#include "datagen/generators.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"

namespace uguide {

namespace {

std::string Num(const char* prefix, int64_t n) {
  std::string out = prefix;
  out += std::to_string(n);
  return out;
}

// Small value pools used by the Tax generator. First names carry a fixed
// gender so fname -> gender holds by construction.
constexpr int kNumFirstNames = 40;
constexpr int kNumLastNames = 60;
constexpr int kNumStates = 20;
constexpr int kCitiesPerState = 5;
constexpr int kAreacodesPerState = 3;

Fd MustFd(const Schema& schema, const std::vector<std::string>& lhs,
          const std::string& rhs) {
  AttributeSet lhs_set;
  for (const auto& name : lhs) {
    lhs_set.Add(schema.IndexOf(name).ValueOrDie());
  }
  return Fd(lhs_set, schema.IndexOf(rhs).ValueOrDie());
}

}  // namespace

Relation GenerateTax(const DataGenOptions& options) {
  Schema schema = Schema::Make({"fname", "lname", "gender", "areacode",
                                "phone", "city", "state", "zip", "marital",
                                "has_child", "salary", "rate",
                                "single_exemp", "married_exemp",
                                "child_exemp", "hours"})
                      .ValueOrDie();
  Rng rng(options.seed);
  Relation rel(schema);

  const int num_zips = std::max(50, options.rows / 100);
  // zip z lives in state (z % kNumStates) and city (z % kCitiesPerState) of
  // that state; city names are state-qualified so city -> state also holds.
  const char* kSalaries[] = {"20000", "40000", "60000", "80000", "100000"};

  std::vector<std::string> row(16);
  for (int r = 0; r < options.rows; ++r) {
    const int fname_id = static_cast<int>(rng.NextBounded(kNumFirstNames));
    const int zip = static_cast<int>(rng.NextBounded(num_zips));
    const int state = zip % kNumStates;
    const int city = state * kCitiesPerState +
                     (zip / kNumStates) % kCitiesPerState;
    const int areacode =
        state * kAreacodesPerState +
        static_cast<int>(rng.NextBounded(kAreacodesPerState));
    const int salary_idx = static_cast<int>(rng.NextBounded(5));
    // rate = f(state, salary): base by state plus a per-bracket step.
    const int rate = 10 + state + 2 * salary_idx;

    row[0] = Num("FN", fname_id);
    row[1] = Num("LN", rng.NextBounded(kNumLastNames));
    row[2] = (fname_id % 2 == 0) ? "M" : "F";
    row[3] = Num("AC", areacode);
    row[4] = Num("PH", r);  // unique phone: phone is a key
    row[5] = Num("CITY", city);
    row[6] = Num("ST", state);
    row[7] = Num("ZIP", zip);
    row[8] = rng.NextBool(0.5) ? "married" : "single";
    row[9] = rng.NextBool(0.4) ? "yes" : "no";
    row[10] = kSalaries[salary_idx];
    row[11] = Num("R", rate);
    row[12] = Num("SE", 1000 + 10 * state);
    row[13] = Num("ME", 2000 + 20 * state);
    row[14] = Num("CE", 500 + 5 * state);
    // Free column: weekly hours, functionally independent of everything, so
    // random typos landing here are not FD-detectable (paper's Fig. 4(c)).
    row[15] = Num("", 10 + rng.NextBounded(51));
    rel.AddRow(row);
  }
  return rel;
}

FdSet TaxEmbeddedFds(const Schema& schema) {
  FdSet fds;
  fds.Add(MustFd(schema, {"zip"}, "city"));
  fds.Add(MustFd(schema, {"zip"}, "state"));
  fds.Add(MustFd(schema, {"city"}, "state"));
  fds.Add(MustFd(schema, {"areacode"}, "state"));
  fds.Add(MustFd(schema, {"fname"}, "gender"));
  fds.Add(MustFd(schema, {"state"}, "single_exemp"));
  fds.Add(MustFd(schema, {"state"}, "married_exemp"));
  fds.Add(MustFd(schema, {"state"}, "child_exemp"));
  fds.Add(MustFd(schema, {"state", "salary"}, "rate"));
  return fds;
}

Relation GenerateHospital(const DataGenOptions& options) {
  Schema schema = Schema::Make({"provider_number", "hospital_name",
                                "address", "city", "state", "zip", "county",
                                "phone", "hospital_type", "owner",
                                "emergency", "measure_code", "measure_name",
                                "score", "sample_count", "measure_date"})
                      .ValueOrDie();
  Rng rng(options.seed);
  Relation rel(schema);

  const int num_providers = std::max(20, options.rows / 40);
  const int num_zips = std::max(10, num_providers / 2);
  const int num_cities = std::max(5, num_zips / 3);
  const int num_counties = std::max(3, num_cities / 2);
  const int num_measures = 30;
  const char* kTypes[] = {"acute_care", "critical_access", "childrens"};
  const char* kOwners[] = {"government", "proprietary", "voluntary",
                           "physician"};

  // Provider entity: all attributes derived deterministically from the
  // provider id, so provider_number -> each provider attribute holds.
  auto provider_zip = [&](int p) { return p % num_zips; };
  auto zip_city = [&](int z) { return z % num_cities; };
  auto city_county = [&](int c) { return c % num_counties; };
  auto county_state = [&](int k) { return k % 15; };

  std::vector<std::string> row(16);
  for (int r = 0; r < options.rows; ++r) {
    const int p = static_cast<int>(rng.NextBounded(num_providers));
    const int z = provider_zip(p);
    const int c = zip_city(z);
    const int k = city_county(c);
    const int measure = static_cast<int>(rng.NextBounded(num_measures));

    row[0] = Num("P", p);
    row[1] = Num("Hospital_", p);
    row[2] = Num("Addr_", p);
    row[3] = Num("City_", c);
    row[4] = Num("ST", county_state(k));
    row[5] = Num("ZIP", z);
    row[6] = Num("County_", k);
    row[7] = Num("PH", p);
    row[8] = kTypes[p % 3];
    row[9] = kOwners[p % 4];
    row[10] = (p % 5 == 0) ? "no" : "yes";
    row[11] = Num("MC", measure);
    row[12] = Num("Measure_", measure);
    // Per-observation measurement fields: functionally independent of the
    // provider and measure entities (mirrors the real Hospital data, where
    // scores/dates are not covered by any FD, so random typos there are
    // invisible to FD-based detection).
    row[13] = Num("", rng.NextBounded(100));
    row[14] = Num("", rng.NextBounded(480));
    row[15] = Num("D", rng.NextBounded(365));
    rel.AddRow(row);
  }
  return rel;
}

FdSet HospitalEmbeddedFds(const Schema& schema) {
  FdSet fds;
  for (const char* attr :
       {"hospital_name", "address", "city", "state", "zip", "county",
        "phone", "hospital_type", "owner", "emergency"}) {
    fds.Add(MustFd(schema, {"provider_number"}, attr));
  }
  fds.Add(MustFd(schema, {"zip"}, "city"));
  fds.Add(MustFd(schema, {"zip"}, "state"));
  fds.Add(MustFd(schema, {"city"}, "county"));
  fds.Add(MustFd(schema, {"county"}, "state"));
  fds.Add(MustFd(schema, {"measure_code"}, "measure_name"));
  return fds;
}

Relation GenerateStock(const DataGenOptions& options) {
  Schema schema = Schema::Make({"date", "ticker", "open", "high", "low",
                                "close", "volume", "company", "sector",
                                "exchange"})
                      .ValueOrDie();
  Rng rng(options.seed);
  Relation rel(schema);

  const int num_tickers = std::max(20, options.rows / 60);
  const char* kSectors[] = {"tech", "energy", "health", "finance", "retail",
                            "industrial", "utilities", "materials", "telecom",
                            "consumer"};
  const char* kExchanges[] = {"NYSE", "NASDAQ", "AMEX"};

  // Enumerate distinct (date, ticker) pairs ticker-major so {date, ticker}
  // is a key by construction.
  std::vector<std::string> row(10);
  for (int r = 0; r < options.rows; ++r) {
    const int ticker = r % num_tickers;
    const int day = r / num_tickers;
    const int base = 50 + 7 * ticker;
    const int open = base + static_cast<int>(rng.NextBounded(20));
    const int close = base + static_cast<int>(rng.NextBounded(20));
    const int high = std::max(open, close) + static_cast<int>(
                         rng.NextBounded(5));
    const int low = std::min(open, close) - static_cast<int>(
                        rng.NextBounded(5));

    row[0] = Num("D", day);
    row[1] = Num("TK", ticker);
    row[2] = Num("", open);
    row[3] = Num("", high);
    row[4] = Num("", low);
    row[5] = Num("", close);
    row[6] = Num("", 1000 + static_cast<int64_t>(rng.NextBounded(9000)));
    row[7] = Num("Company_", ticker);
    row[8] = kSectors[ticker % 10];
    row[9] = kExchanges[ticker % 3];
    rel.AddRow(row);
  }
  return rel;
}

FdSet StockEmbeddedFds(const Schema& schema) {
  FdSet fds;
  fds.Add(MustFd(schema, {"ticker"}, "company"));
  fds.Add(MustFd(schema, {"ticker"}, "sector"));
  fds.Add(MustFd(schema, {"ticker"}, "exchange"));
  fds.Add(MustFd(schema, {"company"}, "ticker"));
  for (const char* attr : {"open", "high", "low", "close", "volume"}) {
    fds.Add(MustFd(schema, {"date", "ticker"}, attr));
  }
  return fds;
}

}  // namespace uguide
