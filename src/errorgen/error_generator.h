#ifndef UGUIDE_ERRORGEN_ERROR_GENERATOR_H_
#define UGUIDE_ERRORGEN_ERROR_GENERATOR_H_

#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// How injected errors are apportioned across FDs (§7.1):
/// - kUniform: every FD receives an equal share of violations.
/// - kSystematic: a Zipf-skewed share -- a few FDs carry most errors (the
///   paper's default, "more representative of real-world errors").
/// - kRandom: typos / missing values / duplicated values on random cells,
///   mostly not FD-detectable.
enum class ErrorModel { kUniform, kSystematic, kRandom };

const char* ErrorModelName(ErrorModel model);

/// Options controlling error injection.
struct ErrorGenOptions {
  ErrorModel model = ErrorModel::kSystematic;

  /// Total fraction of tuples receiving an error (paper default: 20%).
  double error_rate = 0.20;

  /// Cap on the fraction of tuples violating any single FD (paper: 10% in
  /// the error-percentage experiment, otherwise unconstrained by default).
  double per_fd_cap = 1.0;

  /// Skew of the Zipf split used by the systematic model.
  double zipf_s = 1.6;

  uint64_t seed = 7;
};

/// \brief The error ledger: which cells were changed, and to what.
///
/// This is the experiment's ground truth: the simulated expert answers
/// cell/tuple questions from it, and evaluation metrics compare detections
/// against it (§7.1 "Workflow Simulation").
class GroundTruth {
 public:
  /// Records that `cell` was changed (idempotent).
  void MarkChanged(const Cell& cell);

  bool IsChanged(const Cell& cell) const {
    return changed_.contains(cell);
  }

  /// True iff any cell of `row` was changed.
  bool IsTupleDirty(TupleId row, int num_attributes) const;

  /// All changed cells in deterministic (row-major) order.
  std::vector<Cell> ChangedCells() const;

  size_t NumChanged() const { return changed_.size(); }

 private:
  std::unordered_set<Cell, CellHash> changed_;
};

/// A dirty table together with its ground-truth error ledger.
struct DirtyDataset {
  Relation dirty;
  GroundTruth truth;
};

/// \brief Injects errors into a clean relation (substitute for BART, §7.1).
///
/// For the FD-violating models (kUniform, kSystematic), each error picks an
/// FD X -> A (per the model's apportioning), a multi-tuple equivalence
/// class of X, and one member tuple, and perturbs that tuple's A-cell to a
/// conflicting value -- guaranteeing the error is detectable as a violation
/// of that FD. For kRandom, errors are typos, blanks, or copied values on
/// uniformly random cells. Already-changed cells are never re-perturbed.
///
/// `true_fds` should be the (minimal) FDs holding on `clean`; FDs without
/// any multi-tuple class are skipped. Returns InvalidArgument when options
/// are out of range or no injectable FD exists for an FD-violating model.
Result<DirtyDataset> InjectErrors(const Relation& clean, const FdSet& true_fds,
                                  const ErrorGenOptions& options = {});

}  // namespace uguide

#endif  // UGUIDE_ERRORGEN_ERROR_GENERATOR_H_
