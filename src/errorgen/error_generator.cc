#include "errorgen/error_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace uguide {

namespace {

struct VecHash {
  size_t operator()(const std::vector<ValueCode>& v) const {
    size_t seed = v.size();
    for (ValueCode c : v) HashCombine(seed, c);
    return seed;
  }
};

// Multi-tuple LHS equivalence classes of `fd` on `relation`.
std::vector<std::vector<TupleId>> MultiTupleClasses(const Relation& relation,
                                                    const Fd& fd) {
  std::unordered_map<std::vector<ValueCode>, std::vector<TupleId>, VecHash>
      groups;
  const std::vector<int> cols = fd.lhs.ToVector();
  std::vector<ValueCode> key(cols.size());
  for (TupleId r = 0; r < relation.NumRows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      key[i] = relation.Code(r, cols[i]);
    }
    groups[key].push_back(r);
  }
  std::vector<std::vector<TupleId>> classes;
  for (auto& [k, rows] : groups) {
    if (rows.size() >= 2) classes.push_back(std::move(rows));
  }
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return classes;
}

// A value for the RHS cell guaranteed to differ from every current RHS
// value in the tuple's equivalence class (so the perturbed cell is a strict
// minority there); prefers an existing domain value, falls back to a
// synthetic typo which is unique by construction.
std::string ConflictingValue(const Relation& dirty, int col,
                             const std::vector<TupleId>& cls, Rng& rng,
                             int typo_counter) {
  auto used_in_class = [&](ValueCode code) {
    for (TupleId t : cls) {
      if (dirty.Code(t, col) == code) return true;
    }
    return false;
  };
  if (rng.NextBool(0.5)) {
    // Try a few random rows for an existing value not present in the class.
    for (int attempt = 0; attempt < 8; ++attempt) {
      TupleId r = static_cast<TupleId>(
          rng.NextBounded(static_cast<uint64_t>(dirty.NumRows())));
      if (!used_in_class(dirty.Code(r, col))) return dirty.Value(r, col);
    }
  }
  std::string typo = dirty.Value(cls[0], col);
  typo += "~e";
  typo += std::to_string(typo_counter);
  return typo;
}

Result<DirtyDataset> InjectRandomErrors(const Relation& clean,
                                        const ErrorGenOptions& options) {
  DirtyDataset out{clean, GroundTruth()};
  Rng rng(options.seed);
  const TupleId n = clean.NumRows();
  const int m = clean.NumAttributes();
  const auto target =
      static_cast<size_t>(std::llround(options.error_rate * n));
  int typo_counter = 0;
  size_t placed = 0;
  // Random cells get one of: typo, blank, value copied from another row.
  for (size_t attempt = 0; attempt < 20 * target && placed < target;
       ++attempt) {
    Cell cell{static_cast<TupleId>(rng.NextBounded(static_cast<uint64_t>(n))),
              static_cast<int>(rng.NextBounded(static_cast<uint64_t>(m)))};
    if (out.truth.IsChanged(cell)) continue;
    const ValueCode old_code = out.dirty.Code(cell);
    std::string new_value;
    switch (rng.NextBounded(3)) {
      case 0: {  // typo
        new_value = out.dirty.Value(cell);
        new_value += "~t";
        new_value += std::to_string(typo_counter++);
        break;
      }
      case 1:  // missing value
        new_value = "";
        break;
      default: {  // duplicated value from another row
        TupleId other = static_cast<TupleId>(
            rng.NextBounded(static_cast<uint64_t>(n)));
        new_value = out.dirty.Value(other, cell.col);
        break;
      }
    }
    out.dirty.SetValue(cell.row, cell.col, new_value);
    if (out.dirty.Code(cell) == old_code) continue;  // no-op change
    out.truth.MarkChanged(cell);
    ++placed;
  }
  return out;
}

}  // namespace

const char* ErrorModelName(ErrorModel model) {
  switch (model) {
    case ErrorModel::kUniform:
      return "uniform";
    case ErrorModel::kSystematic:
      return "systematic";
    case ErrorModel::kRandom:
      return "random";
  }
  return "?";
}

void GroundTruth::MarkChanged(const Cell& cell) { changed_.insert(cell); }

bool GroundTruth::IsTupleDirty(TupleId row, int num_attributes) const {
  for (int c = 0; c < num_attributes; ++c) {
    if (changed_.contains(Cell{row, c})) return true;
  }
  return false;
}

std::vector<Cell> GroundTruth::ChangedCells() const {
  std::vector<Cell> out(changed_.begin(), changed_.end());
  std::sort(out.begin(), out.end());
  return out;
}

Result<DirtyDataset> InjectErrors(const Relation& clean, const FdSet& true_fds,
                                  const ErrorGenOptions& options) {
  if (options.error_rate < 0.0 || options.error_rate > 0.9) {
    return Status::InvalidArgument("error_rate must be in [0, 0.9]");
  }
  if (options.per_fd_cap <= 0.0 || options.per_fd_cap > 1.0) {
    return Status::InvalidArgument("per_fd_cap must be in (0, 1]");
  }
  if (clean.NumRows() == 0) {
    return Status::InvalidArgument("cannot inject errors into empty relation");
  }
  if (options.model == ErrorModel::kRandom) {
    return InjectRandomErrors(clean, options);
  }

  Rng rng(options.seed);

  // Usable FDs: at least one multi-tuple LHS class, so perturbing a member's
  // RHS creates a real violating pair.
  struct Target {
    Fd fd;
    std::vector<std::vector<TupleId>> classes;
    size_t placed = 0;
  };
  std::vector<Target> targets;
  for (const Fd& fd : true_fds) {
    auto classes = MultiTupleClasses(clean, fd);
    if (!classes.empty()) targets.push_back({fd, std::move(classes), 0});
  }
  if (targets.empty()) {
    return Status::InvalidArgument(
        "no FD has a multi-tuple class; cannot inject FD-detectable errors");
  }

  // Apportion the error budget.
  std::vector<double> weights(targets.size(), 1.0);
  if (options.model == ErrorModel::kSystematic) {
    // Zipf-skew over a shuffled rank assignment: which FDs are error-heavy
    // varies with the seed but a few always dominate.
    std::vector<size_t> ranks(targets.size());
    for (size_t i = 0; i < ranks.size(); ++i) ranks[i] = i;
    rng.Shuffle(ranks);
    for (size_t i = 0; i < targets.size(); ++i) {
      weights[i] =
          1.0 / std::pow(static_cast<double>(ranks[i] + 1), options.zipf_s);
    }
  }

  DirtyDataset out{clean, GroundTruth()};
  const TupleId n = clean.NumRows();
  const auto total_target =
      static_cast<size_t>(std::llround(options.error_rate * n));
  const auto per_fd_cap =
      static_cast<size_t>(std::llround(options.per_fd_cap * n));
  int typo_counter = 0;
  size_t placed = 0;

  for (size_t attempt = 0; attempt < 40 * total_target + 100;
       ++attempt) {
    if (placed >= total_target) break;
    Target& target = targets[rng.NextWeighted(weights)];
    if (target.placed >= per_fd_cap) continue;
    const auto& cls = target.classes[rng.NextBounded(target.classes.size())];
    const TupleId row = cls[rng.NextBounded(cls.size())];
    const Cell cell{row, target.fd.rhs};
    if (out.truth.IsChanged(cell)) continue;
    // The chosen tuple needs at least two witnesses that still agree with
    // it on the FD's LHS *in the dirty table* (earlier injections on other
    // FDs may have perturbed LHS cells) and still carry their pristine RHS
    // value. That keeps the clean value a strict majority, so the injected
    // cell is unambiguously the flagged minority -- no tie-break hazards.
    size_t witnesses = 0;
    for (TupleId t : cls) {
      if (t == row) continue;
      if (out.truth.IsChanged(Cell{t, target.fd.rhs})) continue;
      if (!out.dirty.Agree(row, t, target.fd.lhs)) continue;
      ++witnesses;
    }
    if (witnesses < 2) continue;
    const ValueCode old_code = out.dirty.Code(cell);
    out.dirty.SetValue(cell.row, cell.col,
                       ConflictingValue(out.dirty, cell.col, cls, rng,
                                        typo_counter++));
    UGUIDE_CHECK(out.dirty.Code(cell) != old_code);
    out.truth.MarkChanged(cell);
    ++target.placed;
    ++placed;
  }

  if (placed < total_target) {
    UGUIDE_LOG(Warning) << "error generator placed " << placed << " of "
                        << total_target << " requested errors";
  }
  return out;
}

}  // namespace uguide
