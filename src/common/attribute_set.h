#ifndef UGUIDE_COMMON_ATTRIBUTE_SET_H_
#define UGUIDE_COMMON_ATTRIBUTE_SET_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace uguide {

/// \brief A set of attribute indices backed by a 64-bit mask.
///
/// Relations in this library have at most 64 attributes (the paper's datasets
/// have at most 16), so a single word suffices. AttributeSet is a value type:
/// cheap to copy, hash, and compare, which matters because FD discovery
/// manipulates millions of them.
class AttributeSet {
 public:
  static constexpr int kMaxAttributes = 64;

  /// Constructs the empty set.
  constexpr AttributeSet() = default;

  /// Constructs a set from a raw bitmask.
  constexpr explicit AttributeSet(uint64_t mask) : mask_(mask) {}

  /// Constructs a set from a list of attribute indices.
  AttributeSet(std::initializer_list<int> attrs) {
    for (int a : attrs) Add(a);
  }

  /// Returns the set {0, 1, ..., m-1}.
  static AttributeSet Full(int m) {
    UGUIDE_CHECK(m >= 0 && m <= kMaxAttributes);
    return m == kMaxAttributes ? AttributeSet(~uint64_t{0})
                               : AttributeSet((uint64_t{1} << m) - 1);
  }

  /// Returns the singleton set {attr}.
  static AttributeSet Single(int attr) {
    AttributeSet s;
    s.Add(attr);
    return s;
  }

  uint64_t mask() const { return mask_; }

  bool Empty() const { return mask_ == 0; }

  /// Number of attributes in the set.
  int Size() const { return std::popcount(mask_); }

  bool Contains(int attr) const {
    UGUIDE_DCHECK(attr >= 0 && attr < kMaxAttributes);
    return (mask_ >> attr) & 1;
  }

  void Add(int attr) {
    UGUIDE_DCHECK(attr >= 0 && attr < kMaxAttributes);
    mask_ |= uint64_t{1} << attr;
  }

  void Remove(int attr) {
    UGUIDE_DCHECK(attr >= 0 && attr < kMaxAttributes);
    mask_ &= ~(uint64_t{1} << attr);
  }

  /// True iff this set is a (non-strict) subset of `other`.
  bool IsSubsetOf(const AttributeSet& other) const {
    return (mask_ & other.mask_) == mask_;
  }

  /// True iff this set is a strict subset of `other`.
  bool IsStrictSubsetOf(const AttributeSet& other) const {
    return mask_ != other.mask_ && IsSubsetOf(other);
  }

  bool Intersects(const AttributeSet& other) const {
    return (mask_ & other.mask_) != 0;
  }

  AttributeSet Union(const AttributeSet& other) const {
    return AttributeSet(mask_ | other.mask_);
  }

  AttributeSet Intersect(const AttributeSet& other) const {
    return AttributeSet(mask_ & other.mask_);
  }

  /// Set difference: elements of this set not in `other`.
  AttributeSet Minus(const AttributeSet& other) const {
    return AttributeSet(mask_ & ~other.mask_);
  }

  /// The set with `attr` added (this set is unchanged).
  AttributeSet With(int attr) const {
    AttributeSet s = *this;
    s.Add(attr);
    return s;
  }

  /// The set with `attr` removed (this set is unchanged).
  AttributeSet Without(int attr) const {
    AttributeSet s = *this;
    s.Remove(attr);
    return s;
  }

  /// The smallest attribute index in the set; the set must be non-empty.
  int Lowest() const {
    UGUIDE_DCHECK(mask_ != 0);
    return std::countr_zero(mask_);
  }

  /// The largest attribute index in the set; the set must be non-empty.
  int Highest() const {
    UGUIDE_DCHECK(mask_ != 0);
    return 63 - std::countl_zero(mask_);
  }

  /// Returns the members in increasing order.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(Size());
    for (uint64_t m = mask_; m != 0; m &= m - 1) {
      out.push_back(std::countr_zero(m));
    }
    return out;
  }

  /// Renders as e.g. "{0,3,5}".
  std::string ToString() const;

  /// Renders using attribute names, e.g. "zip,city".
  std::string ToString(const std::vector<std::string>& names) const;

  bool operator==(const AttributeSet& other) const {
    return mask_ == other.mask_;
  }
  bool operator!=(const AttributeSet& other) const {
    return mask_ != other.mask_;
  }
  /// Orders by mask value; used for deterministic container ordering.
  bool operator<(const AttributeSet& other) const {
    return mask_ < other.mask_;
  }

  /// Iteration support: `for (int a : set) ...` yields members in
  /// increasing order.
  class Iterator {
   public:
    explicit Iterator(uint64_t mask) : mask_(mask) {}
    int operator*() const { return std::countr_zero(mask_); }
    Iterator& operator++() {
      mask_ &= mask_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return mask_ != other.mask_;
    }

   private:
    uint64_t mask_;
  };

  Iterator begin() const { return Iterator(mask_); }
  Iterator end() const { return Iterator(0); }

 private:
  uint64_t mask_ = 0;
};

/// Hash functor so AttributeSet can key unordered containers.
struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const {
    // SplitMix64 finalizer: strong mixing for sequential masks.
    uint64_t x = s.mask() + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace uguide

#endif  // UGUIDE_COMMON_ATTRIBUTE_SET_H_
