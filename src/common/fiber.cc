#include "common/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "common/check.h"

// Sanitizer fiber annotations. ASan must be told about every stack switch
// (or fake-stack bookkeeping corrupts and stack-use-after-return reports
// point into the void); TSan must be told so the happens-before state of
// the fiber travels with it across pool threads instead of looking like a
// data race on every strategy variable.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define UGUIDE_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define UGUIDE_FIBER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) && !defined(UGUIDE_FIBER_ASAN)
#define UGUIDE_FIBER_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__) && !defined(UGUIDE_FIBER_TSAN)
#define UGUIDE_FIBER_TSAN 1
#endif

#ifdef UGUIDE_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef UGUIDE_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace uguide {

namespace {

/// The fiber currently executing on this thread (null on a plain thread).
/// Maintained by Resume around every switch; Yield and the trampoline read
/// it to find "self".
thread_local Fiber* t_current_fiber = nullptr;

size_t PageSize() {
  static const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

size_t RoundUpToPage(size_t bytes) {
  const size_t page = PageSize();
  return (bytes + page - 1) / page * page;
}

}  // namespace

Fiber::Fiber(std::function<void()> body, size_t stack_bytes)
    : body_(std::move(body)) {
  stack_bytes_ = RoundUpToPage(stack_bytes);
  mapping_bytes_ = stack_bytes_ + PageSize();
  void* mapping = ::mmap(nullptr, mapping_bytes_, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  UGUIDE_CHECK(mapping != MAP_FAILED) << "fiber stack mmap failed";
  mapping_ = static_cast<char*>(mapping);
  // Guard page at the low end: stack overflow faults instead of scribbling.
  UGUIDE_CHECK(::mprotect(mapping_, PageSize(), PROT_NONE) == 0)
      << "fiber guard page mprotect failed";
  stack_bottom_ = mapping_ + PageSize();

  UGUIDE_CHECK(::getcontext(&fiber_ctx_) == 0) << "getcontext failed";
  fiber_ctx_.uc_stack.ss_sp = stack_bottom_;
  fiber_ctx_.uc_stack.ss_size = stack_bytes_;
  // No uc_link: the trampoline swaps back explicitly after the body
  // returns, so the final switch carries the sanitizer annotations too.
  fiber_ctx_.uc_link = nullptr;
  ::makecontext(&fiber_ctx_, &Fiber::Trampoline, 0);

#ifdef UGUIDE_FIBER_TSAN
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  UGUIDE_CHECK(!started_ || finished_)
      << "destroying a live fiber; wind it down first";
#ifdef UGUIDE_FIBER_TSAN
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (mapping_ != nullptr) ::munmap(mapping_, mapping_bytes_);
}

void Fiber::Trampoline() {
  Fiber* self = t_current_fiber;
  UGUIDE_CHECK(self != nullptr) << "fiber trampoline without a current fiber";
#ifdef UGUIDE_FIBER_ASAN
  // Complete the switch that brought us here; remember the resumer's stack
  // bounds for the switch back.
  __sanitizer_finish_switch_fiber(self->asan_fiber_fake_stack_,
                                  &self->asan_caller_stack_bottom_,
                                  &self->asan_caller_stack_size_);
#endif
  // No stack frame exists below this one: an escaping exception cannot
  // unwind anywhere sensible, so fail loudly instead of corrupting state.
  try {
    self->body_();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: exception escaped a fiber body: %s\n",
                 e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fatal: exception escaped a fiber body\n");
    std::abort();
  }
  self->finished_ = true;
  self->SwitchOut();
  UGUIDE_CHECK(false) << "finished fiber resumed";
}

void Fiber::Resume() {
  UGUIDE_CHECK(!finished_) << "Resume on a finished fiber";
  started_ = true;
  Fiber* const previous = t_current_fiber;
  t_current_fiber = this;
  SwitchIn();
  t_current_fiber = previous;
}

void Fiber::Yield() {
  Fiber* self = t_current_fiber;
  UGUIDE_CHECK(self != nullptr) << "Yield outside a fiber";
  self->SwitchOut();
}

void Fiber::SwitchIn() {
#ifdef UGUIDE_FIBER_TSAN
  tsan_resumer_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#ifdef UGUIDE_FIBER_ASAN
  __sanitizer_start_switch_fiber(&asan_caller_fake_stack_, stack_bottom_,
                                 stack_bytes_);
#endif
  UGUIDE_CHECK(::swapcontext(&caller_ctx_, &fiber_ctx_) == 0)
      << "swapcontext into fiber failed";
#ifdef UGUIDE_FIBER_ASAN
  // Back on the caller: if the fiber finished it passed null as its saved
  // fake stack, which tells ASan to free the fiber's fake-stack state.
  __sanitizer_finish_switch_fiber(asan_caller_fake_stack_, nullptr, nullptr);
#endif
}

void Fiber::SwitchOut() {
#ifdef UGUIDE_FIBER_TSAN
  __tsan_switch_to_fiber(tsan_resumer_, 0);
#endif
#ifdef UGUIDE_FIBER_ASAN
  __sanitizer_start_switch_fiber(finished_ ? nullptr : &asan_fiber_fake_stack_,
                                 asan_caller_stack_bottom_,
                                 asan_caller_stack_size_);
#endif
  UGUIDE_CHECK(::swapcontext(&fiber_ctx_, &caller_ctx_) == 0)
      << "swapcontext out of fiber failed";
#ifdef UGUIDE_FIBER_ASAN
  // Resumed again (possibly on another thread).
  __sanitizer_finish_switch_fiber(asan_fiber_fake_stack_,
                                  &asan_caller_stack_bottom_,
                                  &asan_caller_stack_size_);
#endif
}

}  // namespace uguide
