#include "common/fault_injection.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

namespace uguide {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses a non-negative integer; false on garbage or empty input (atoi's
// silent 0 would turn a typo like "@x" into "every hit").
bool ParseInt(std::string_view s, int* out) {
  if (s.empty()) return false;
  long value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > std::numeric_limits<int>::max()) return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string copy(s);
  char* end = nullptr;
  *out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

// Parses a decimal uint64; false on garbage, sign, or overflow. The seed
// used to go through ParseDouble, where "1e300" parsed fine and the cast to
// uint64_t was undefined behaviour.
bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

// Parses the "@trigger" suffix into the rule's trigger fields.
Status ParseTrigger(std::string_view trigger, FaultRule* rule) {
  trigger = Trim(trigger);
  if (trigger.empty()) {
    return Status::InvalidArgument("empty fault trigger after '@'");
  }
  if (trigger.front() == 'p') {
    double p = 0.0;
    // The negated-range form rejects NaN, which slips through `p < 0 || p >
    // 1` and would poison every NextBool draw.
    if (!ParseDouble(trigger.substr(1), &p) || !(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("bad fault probability: " +
                                     std::string(trigger));
    }
    rule->probabilistic = true;
    rule->probability = p;
    return Status::OK();
  }
  if (trigger.back() == '+') {
    int first = 0;
    if (!ParseInt(trigger.substr(0, trigger.size() - 1), &first) ||
        first < 1) {
      return Status::InvalidArgument("bad fault hit range: " +
                                     std::string(trigger));
    }
    rule->first_hit = first;
    return Status::OK();
  }
  const size_t dash = trigger.find('-');
  int first = 0;
  int last = 0;
  if (dash == std::string_view::npos) {
    if (!ParseInt(trigger, &first) || first < 1) {
      return Status::InvalidArgument("bad fault hit: " +
                                     std::string(trigger));
    }
    rule->first_hit = first;
    rule->last_hit = first;
    return Status::OK();
  }
  if (!ParseInt(trigger.substr(0, dash), &first) ||
      !ParseInt(trigger.substr(dash + 1), &last) || first < 1 ||
      last < first) {
    return Status::InvalidArgument("bad fault hit range: " +
                                   std::string(trigger));
  }
  rule->first_hit = first;
  rule->last_hit = last;
  return Status::OK();
}

Status ParseAction(std::string_view action, FaultRule* rule) {
  action = Trim(action);
  if (action == "unavailable") {
    rule->action = FaultAction::kUnavailable;
    return Status::OK();
  }
  if (action == "crash") {
    rule->action = FaultAction::kCrash;
    return Status::OK();
  }
  if (action == "eio") {
    rule->action = FaultAction::kEio;
    return Status::OK();
  }
  if (action == "enospc") {
    rule->action = FaultAction::kEnospc;
    return Status::OK();
  }
  if (action.rfind("short:", 0) == 0) {
    int n = 0;
    if (!ParseInt(action.substr(6), &n)) {
      return Status::InvalidArgument("bad short-write byte count: " +
                                     std::string(action));
    }
    rule->action = FaultAction::kShortWrite;
    rule->byte_count = n;
    return Status::OK();
  }
  if (action.rfind("torn:", 0) == 0) {
    int n = 0;
    if (!ParseInt(action.substr(5), &n)) {
      return Status::InvalidArgument("bad torn-write byte count: " +
                                     std::string(action));
    }
    rule->action = FaultAction::kTornWrite;
    rule->byte_count = n;
    return Status::OK();
  }
  if (action.rfind("latency:", 0) == 0) {
    double ms = 0.0;
    // Bounded so `latency_ms * 1e3` always fits an int64 microsecond count
    // in OnPoint; "latency:inf" (or NaN, or 1e300) made that cast undefined.
    if (!ParseDouble(action.substr(8), &ms) || !std::isfinite(ms) ||
        !(ms >= 0.0 && ms <= 1e12)) {
      return Status::InvalidArgument("bad latency value: " +
                                     std::string(action));
    }
    rule->action = FaultAction::kLatency;
    rule->latency_ms = ms;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown fault action: " +
                                 std::string(action));
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

Status FaultRegistry::LoadPlan(std::string_view plan) {
  std::vector<FaultRule> rules;
  uint64_t seed = 11;
  std::string_view rest = plan;
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    std::string_view clause = Trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view()
                                         : rest.substr(semi + 1);
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault clause missing '=': " +
                                     std::string(clause));
    }
    const std::string_view key = Trim(clause.substr(0, eq));
    const std::string_view value = clause.substr(eq + 1);
    if (key.empty()) {
      return Status::InvalidArgument("fault clause missing site: " +
                                     std::string(clause));
    }
    if (key == "seed") {
      if (!ParseUint64(Trim(value), &seed)) {
        return Status::InvalidArgument("bad fault seed: " +
                                       std::string(value));
      }
      continue;
    }
    FaultRule rule;
    rule.site = std::string(key);
    const size_t at = value.find('@');
    UGUIDE_RETURN_NOT_OK(ParseAction(value.substr(0, at), &rule));
    if (at != std::string_view::npos) {
      UGUIDE_RETURN_NOT_OK(ParseTrigger(value.substr(at + 1), &rule));
    }
    rules.push_back(std::move(rule));
  }

  std::lock_guard<std::mutex> lock(mu_);
  rules_ = std::move(rules);
  hits_.clear();
  rng_.emplace(seed);
  clock_skew_us_.store(0, std::memory_order_relaxed);
  enabled_.store(!rules_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  rules_.clear();
  hits_.clear();
  rng_.reset();
  clock_skew_us_.store(0, std::memory_order_relaxed);
}

Status FaultRegistry::OnPoint(std::string_view site) {
  if (!enabled()) return Status::OK();
  IoFault fault = OnIoPoint(site);
  // A non-IO-aware site cannot model a partial write: a torn write degrades
  // to dying before the write, a short write to failing outright.
  if (fault.crash_after) CrashNow();
  return fault.status;
}

IoFault FaultRegistry::OnIoPoint(std::string_view site) {
  IoFault out;
  if (!enabled()) return out;
  std::lock_guard<std::mutex> lock(mu_);
  const int hit = ++hits_[std::string(site)];
  for (const FaultRule& rule : rules_) {
    if (rule.site != site) continue;
    bool triggered;
    if (rule.probabilistic) {
      // Always draw so the stream stays aligned across sites and hits.
      triggered = rng_->NextBool(rule.probability);
    } else {
      triggered = hit >= rule.first_hit && hit <= rule.last_hit;
    }
    if (!triggered) continue;
    const std::string where =
        std::string(site) + " (hit " + std::to_string(hit) + ")";
    switch (rule.action) {
      case FaultAction::kCrash:
        // Die exactly here: no flushing, no destructors — only what was
        // already fsync'd survives, which is what crash tests verify.
        CrashNow();
      case FaultAction::kLatency:
        clock_skew_us_.fetch_add(static_cast<int64_t>(rule.latency_ms * 1e3),
                                 std::memory_order_relaxed);
        break;
      case FaultAction::kUnavailable:
        if (out.status.ok()) {
          out.status = Status::Unavailable("injected fault at " + where);
        }
        break;
      case FaultAction::kEio:
        if (out.status.ok()) {
          out.status = Status::IoError("injected EIO at " + where);
          out.fault_errno = EIO;
        }
        break;
      case FaultAction::kEnospc:
        if (out.status.ok()) {
          out.status = Status::IoError("injected ENOSPC at " + where);
          out.fault_errno = ENOSPC;
        }
        break;
      case FaultAction::kShortWrite:
        if (out.status.ok()) {
          out.status = Status::IoError("injected short write at " + where);
          out.fault_errno = ENOSPC;
          out.bytes = static_cast<size_t>(rule.byte_count);
        }
        break;
      case FaultAction::kTornWrite:
        if (out.status.ok()) {
          out.status = Status::IoError("injected torn write at " + where);
          out.bytes = static_cast<size_t>(rule.byte_count);
          out.crash_after = true;
        }
        break;
    }
  }
  return out;
}

void FaultRegistry::CrashNow() { std::_Exit(kCrashExitCode); }

int FaultRegistry::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(std::string(site));
  return it == hits_.end() ? 0 : it->second;
}

std::chrono::steady_clock::time_point FaultRegistry::Now() const {
  return std::chrono::steady_clock::now() +
         std::chrono::microseconds(
             clock_skew_us_.load(std::memory_order_relaxed));
}

void FaultRegistry::AdvanceClockMs(double ms) {
  clock_skew_us_.fetch_add(static_cast<int64_t>(ms * 1e3),
                           std::memory_order_relaxed);
}

std::vector<FaultRule> FaultRegistry::rules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_;
}

}  // namespace uguide
