#ifndef UGUIDE_COMMON_MEMORY_BUDGET_H_
#define UGUIDE_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace uguide {

/// \brief Thread-safe memory accountant with a soft and a hard limit.
///
/// Subsystems that materialize large recomputable state (stripped
/// partitions, partition products) charge every allocation against a budget
/// and release it when the object dies. Two thresholds drive two different
/// policies at the call sites:
///
///  - **soft limit**: advisory. Crossing it never fails a charge; callers
///    poll `OverSoftLimit()` and respond by shedding recomputable state
///    (e.g. the LRU partition eviction in `PartitionStore`). 0 = none.
///  - **hard limit**: binding. `TryCharge` refuses to cross it, and callers
///    degrade gracefully (TANE stops growing the lattice and reports
///    `memory_truncated`) instead of letting the process OOM. 0 = none.
///
/// `ForceCharge` exists for state that *must* materialize to preserve
/// correctness (a recomputed partition the caller already depends on); it
/// can transiently overshoot the hard limit but still feeds the high-water
/// statistics, so accounting stays honest.
///
/// All counters are relaxed atomics: a budget may be shared by every worker
/// of a discovery pool. The accounting is approximate by design (container
/// payloads, not allocator metadata); see DESIGN.md §8.
class MemoryBudget {
 public:
  /// An unlimited budget: nothing ever fails, but charges and the
  /// high-water mark are still tracked (bench reporting uses this).
  MemoryBudget() = default;

  /// 0 for either limit disables it. `soft_limit <= hard_limit` is not
  /// enforced, but anything else defeats the eviction-before-truncation
  /// cascade.
  MemoryBudget(size_t soft_limit_bytes, size_t hard_limit_bytes)
      : soft_limit_(soft_limit_bytes), hard_limit_(hard_limit_bytes) {}

  /// The CLI's `--memory-budget-mb=N` semantics: hard limit N MiB, soft
  /// limit 80% of that so eviction kicks in before truncation.
  static MemoryBudget FromMegabytes(size_t mb) {
    const size_t hard = mb * (size_t{1} << 20);
    return MemoryBudget(hard - hard / 5, hard);
  }

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Charges `bytes` unless doing so would cross the hard limit, in which
  /// case nothing is charged and false is returned.
  bool TryCharge(size_t bytes) {
    const size_t after = charged_.fetch_add(bytes, std::memory_order_relaxed)
                         + bytes;
    if (hard_limit_ != 0 && after > hard_limit_) {
      charged_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    UpdateHighWater(after);
    return true;
  }

  /// Charges unconditionally (may overshoot the hard limit). For state the
  /// caller cannot refuse to materialize.
  void ForceCharge(size_t bytes) {
    const size_t after = charged_.fetch_add(bytes, std::memory_order_relaxed)
                         + bytes;
    UpdateHighWater(after);
  }

  /// Returns `bytes` previously charged to the budget.
  void Release(size_t bytes) {
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Bytes currently charged.
  size_t charged() const { return charged_.load(std::memory_order_relaxed); }

  /// The largest value `charged()` ever reached.
  size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  size_t soft_limit() const { return soft_limit_; }
  size_t hard_limit() const { return hard_limit_; }

  /// True iff a soft limit is set and currently exceeded.
  bool OverSoftLimit() const {
    return soft_limit_ != 0 && charged() > soft_limit_;
  }

 private:
  void UpdateHighWater(size_t candidate) {
    size_t seen = high_water_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !high_water_.compare_exchange_weak(seen, candidate,
                                              std::memory_order_relaxed)) {
    }
  }

  size_t soft_limit_ = 0;
  size_t hard_limit_ = 0;
  std::atomic<size_t> charged_{0};
  std::atomic<size_t> high_water_{0};
};

}  // namespace uguide

#endif  // UGUIDE_COMMON_MEMORY_BUDGET_H_
