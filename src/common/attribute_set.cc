#include "common/attribute_set.h"

namespace uguide {

std::string AttributeSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int a : *this) {
    if (!first) out += ",";
    out += std::to_string(a);
    first = false;
  }
  out += "}";
  return out;
}

std::string AttributeSet::ToString(
    const std::vector<std::string>& names) const {
  std::string out;
  bool first = true;
  for (int a : *this) {
    if (!first) out += ",";
    if (a < static_cast<int>(names.size())) {
      out += names[a];
    } else {
      out += "attr" + std::to_string(a);
    }
    first = false;
  }
  return out;
}

}  // namespace uguide
