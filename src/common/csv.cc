#include "common/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace uguide {

namespace {

// All records of a parse, each tagged with the 1-based physical line it
// starts on (quoted fields can span lines, so record index != line number).
struct RawRecords {
  std::vector<std::vector<std::string>> rows;
  std::vector<size_t> lines;
};

// Parses all records of `text` into rows of fields.
Result<RawRecords> ParseRecords(std::string_view text) {
  RawRecords records;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t line = 1;            // current physical (newline-counted) line
  size_t row_start_line = 1;  // line the in-progress record started on
  size_t quote_open_line = 0; // line of the last opening quote

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    records.rows.push_back(std::move(row));
    records.lines.push_back(row_start_line);
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
          quote_open_line = line;
        } else {
          return Status::InvalidArgument(
              "line " + std::to_string(line) +
              ": quote inside unquoted field");
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Swallow; the following '\n' (if any) terminates the row.
        break;
      case '\n':
        end_row();
        ++line;
        row_start_line = line;
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("line " + std::to_string(quote_open_line) +
                                   ": unterminated quoted field");
  }
  // Final record without trailing newline.
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return records;
}

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

void AppendField(std::string& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out.append(field);
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

Result<CsvTable> ParseCsv(std::string_view text) {
  // Strip a UTF-8 BOM; spreadsheet exports prepend one, and leaving it in
  // would silently mangle the first header name.
  if (text.size() >= 3 && text.substr(0, 3) == "\xEF\xBB\xBF") {
    text.remove_prefix(3);
  }
  UGUIDE_ASSIGN_OR_RETURN(RawRecords records, ParseRecords(text));
  if (records.rows.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  CsvTable table;
  table.header = std::move(records.rows.front());
  const size_t width = table.header.size();
  table.rows.reserve(records.rows.size() - 1);
  for (size_t i = 1; i < records.rows.size(); ++i) {
    if (records.rows[i].size() != width) {
      return Status::InvalidArgument(
          "line " + std::to_string(records.lines[i]) + ": expected " +
          std::to_string(width) + " fields, got " +
          std::to_string(records.rows[i].size()));
    }
    table.rows.push_back(std::move(records.rows[i]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed for " + path);
  }
  Result<CsvTable> table = ParseCsv(buffer.str());
  if (!table.ok()) {
    // Prefix parse errors with the file so "line N" points somewhere.
    return Status(table.status().code(),
                  path + ": " + table.status().message());
  }
  return table;
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      AppendField(out, row[i]);
    }
    out += '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << WriteCsv(table);
  if (!out) {
    return Status::IoError("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace uguide
