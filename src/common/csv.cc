#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace uguide {

namespace {

// Parses all records of `text` into rows of fields.
Result<std::vector<std::vector<std::string>>> ParseRecords(
    std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    records.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
        } else {
          return Status::InvalidArgument(
              "quote inside unquoted field at offset " + std::to_string(i));
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Swallow; the following '\n' (if any) terminates the row.
        break;
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  // Final record without trailing newline.
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return records;
}

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

void AppendField(std::string& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out.append(field);
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

Result<CsvTable> ParseCsv(std::string_view text) {
  UGUIDE_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> records,
                          ParseRecords(text));
  if (records.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  CsvTable table;
  table.header = std::move(records.front());
  const size_t width = table.header.size();
  table.rows.reserve(records.size() - 1);
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].size() != width) {
      return Status::InvalidArgument(
          "row " + std::to_string(i) + " has " +
          std::to_string(records[i].size()) + " fields, expected " +
          std::to_string(width));
    }
    table.rows.push_back(std::move(records[i]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      AppendField(out, row[i]);
    }
    out += '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << WriteCsv(table);
  if (!out) {
    return Status::IoError("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace uguide
