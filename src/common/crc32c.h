#ifndef UGUIDE_COMMON_CRC32C_H_
#define UGUIDE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace uguide {

/// \brief CRC-32C (Castagnoli, reflected polynomial 0x82F63B78), the
/// checksum guarding every v2 journal record against bit-rot.
///
/// Hand-rolled table-driven implementation — the journal must stay
/// dependency-free, and the polynomial choice matches what storage systems
/// (iSCSI, ext4, LevelDB) use for exactly this purpose: detecting media
/// corruption, not adversaries. Not a cryptographic hash.
uint32_t Crc32c(const void* data, size_t size);

inline uint32_t Crc32c(std::string_view text) {
  return Crc32c(text.data(), text.size());
}

}  // namespace uguide

#endif  // UGUIDE_COMMON_CRC32C_H_
