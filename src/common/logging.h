#ifndef UGUIDE_COMMON_LOGGING_H_
#define UGUIDE_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace uguide {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide log configuration.
///
/// The library logs sparingly (discovery progress, session summaries).
/// Messages below the threshold are compiled to a no-op stream.
class Logger {
 public:
  /// Sets the minimum level that will be emitted (default kWarning, so the
  /// library is silent in normal operation).
  static void SetLevel(LogLevel level) { Threshold() = level; }

  static LogLevel GetLevel() { return Threshold(); }

  static bool Enabled(LogLevel level) { return level >= Threshold(); }

 private:
  static LogLevel& Threshold() {
    static LogLevel threshold = LogLevel::kWarning;
    return threshold;
  }
};

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    if (Logger::Enabled(level_)) {
      std::cerr << stream_.str() << std::endl;
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace uguide

#define UGUIDE_LOG(level)                                      \
  ::uguide::internal::LogMessage(::uguide::LogLevel::k##level, \
                                 __FILE__, __LINE__)

#endif  // UGUIDE_COMMON_LOGGING_H_
