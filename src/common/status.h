#ifndef UGUIDE_COMMON_STATUS_H_
#define UGUIDE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace uguide {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIoError = 5,
  kFailedPrecondition = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kResourceExhausted = 9,
  /// Transient failure: the operation may succeed if retried (flaky
  /// expert, injected fault). The retry layers key on this code.
  kUnavailable = 10,
  /// Durable state is provably damaged (checksum mismatch mid-journal,
  /// bit-rot). Unlike kIoError this is *not* transient and *not* a parse
  /// problem: the bytes were once valid and no longer are. The recovery
  /// scan keys on this code to quarantine instead of resume.
  kDataLoss = 11,
};

/// \brief Returns a human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// The library does not use exceptions; fallible operations return a Status
/// (or Result<T>, see result.h). An OK Status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff this is a transient (retryable) failure.
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// Explicitly discards the status (e.g. best-effort cleanup paths).
  void IgnoreError() const {}

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace uguide

/// Propagates a non-OK Status to the caller.
#define UGUIDE_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::uguide::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // UGUIDE_COMMON_STATUS_H_
