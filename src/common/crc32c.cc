#include "common/crc32c.h"

#include <array>

namespace uguide {

namespace {

/// The 256-entry lookup table for the reflected Castagnoli polynomial,
/// computed once bit-by-bit (the classic Sarwate construction).
std::array<uint32_t, 256> BuildTable() {
  constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = BuildTable();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace uguide
