#ifndef UGUIDE_COMMON_RNG_H_
#define UGUIDE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace uguide {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// All stochastic components of the library (data generation, error
/// injection, sampling strategies) take an explicit Rng so experiments are
/// reproducible from a seed. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the generator; two Rngs with the same seed produce identical
  /// streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Index drawn from the (unnormalized, non-negative) weight vector.
  /// At least one weight must be positive.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Zipf-like rank in [0, n): probability of rank r proportional to
  /// 1/(r+1)^s. Used by the systematic error model to skew error mass.
  size_t NextZipf(size_t n, double s);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace uguide

#endif  // UGUIDE_COMMON_RNG_H_
