#ifndef UGUIDE_COMMON_FIBER_H_
#define UGUIDE_COMMON_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>

namespace uguide {

/// \brief A stackful coroutine: a callable running on its own stack that
/// can park itself (`Yield`) and be continued later (`Resume`) from any
/// thread.
///
/// This is the primitive that lets a blocking strategy loop be served
/// without a dedicated OS thread. A SessionStateMachine runs its strategy
/// on a fiber; between questions the fiber is just a parked stack (a few
/// hundred KiB, no kernel thread), so 10k concurrent sessions cost 10k
/// stacks instead of 10k pump threads, and each "step" executes inline on
/// whichever pool thread resumed the fiber.
///
/// Contract:
///  - `Resume` runs the body until it calls `Yield` or returns. It must
///    never be called concurrently for the same fiber, and never after
///    `finished()` — callers serialize (the serving layer's per-session
///    mutex, or a single driving thread).
///  - `Yield` may only be called from inside the body, on the thread that
///    is currently resuming it.
///  - Successive `Resume` calls may come from *different* threads; the
///    caller must establish happens-before between them (e.g. hand the
///    fiber over under a mutex). The body must therefore not hold a mutex
///    or thread-bound resource (errno aside) across a `Yield`.
///  - The body must not let an exception escape: there is no stack below
///    the trampoline to unwind into. The trampoline aborts with the
///    exception's message if one does.
///  - The destructor requires `finished()` — wind the body down first
///    (e.g. SessionStateMachine::Abandon answers kIdk until the strategy
///    returns).
///
/// The stack is mmap'd with a PROT_NONE guard page below it, so overflow
/// faults instead of corrupting a neighbor. Under ASan/TSan the switches
/// carry the sanitizer fiber annotations (__sanitizer_start_switch_fiber /
/// __tsan_switch_to_fiber), so sanitized builds see every fiber as a
/// properly registered stack — the serving TSan gate depends on this.
class Fiber {
 public:
  /// 512 KiB of usable stack: strategies recurse only over attribute sets
  /// (depth ≤ #attributes) but run the full question loop, journal I/O and
  /// partition math on this stack.
  static constexpr size_t kDefaultStackBytes = 512 * 1024;

  explicit Fiber(std::function<void()> body,
                 size_t stack_bytes = kDefaultStackBytes);

  /// Requires finished().
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the body until its next Yield or until it returns.
  void Resume();

  /// Parks the calling fiber and returns control to its resumer.
  static void Yield();

  /// True once the body has returned; Resume must not be called again.
  bool finished() const { return finished_; }

 private:
  static void Trampoline();

  void SwitchIn();   // resumer side: annotate + swap into the fiber
  void SwitchOut();  // fiber side: annotate + swap back to the resumer

  std::function<void()> body_;
  ucontext_t caller_ctx_;
  ucontext_t fiber_ctx_;
  char* mapping_ = nullptr;    // guard page + stack
  size_t mapping_bytes_ = 0;   // total mapping size
  char* stack_bottom_ = nullptr;
  size_t stack_bytes_ = 0;     // usable stack size
  bool started_ = false;
  bool finished_ = false;

  // Sanitizer bookkeeping (unused members in plain builds are harmless).
  void* tsan_fiber_ = nullptr;
  void* tsan_resumer_ = nullptr;
  void* asan_caller_fake_stack_ = nullptr;
  void* asan_fiber_fake_stack_ = nullptr;
  const void* asan_caller_stack_bottom_ = nullptr;
  size_t asan_caller_stack_size_ = 0;
};

}  // namespace uguide

#endif  // UGUIDE_COMMON_FIBER_H_
