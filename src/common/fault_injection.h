#ifndef UGUIDE_COMMON_FAULT_INJECTION_H_
#define UGUIDE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace uguide {

/// What a matching fault rule does when its site fires.
enum class FaultAction {
  kUnavailable,  ///< the call fails transiently (Status::Unavailable)
  kLatency,      ///< the call is slow: advances the registry's virtual clock
  kCrash,        ///< the process dies on the spot (std::_Exit)
  kEio,          ///< the syscall fails with EIO (media error)
  kEnospc,       ///< the syscall fails with ENOSPC (disk full)
  /// A write persists only the first `byte_count` bytes, then fails with
  /// ENOSPC — the classic full-disk partial write. Only meaningful at
  /// IO-aware sites (OnIoPoint); OnPoint degrades it to a plain ENOSPC.
  kShortWrite,
  /// A write persists only the first `byte_count` bytes, then the process
  /// dies (std::_Exit) — a torn write at byte N, the crash-consistency
  /// scenario salvage logic exists for. OnPoint degrades it to kCrash.
  kTornWrite,
};

/// \brief One parsed clause of a fault plan: when site `site` fires and the
/// trigger matches, apply `action`.
struct FaultRule {
  std::string site;
  FaultAction action = FaultAction::kUnavailable;
  /// Virtual milliseconds added to the clock by kLatency.
  double latency_ms = 0.0;
  /// Bytes let through before kShortWrite fails / kTornWrite kills.
  int byte_count = 0;
  /// Trigger: either a probability per hit (seeded, deterministic) or an
  /// inclusive 1-based hit range [first_hit, last_hit].
  bool probabilistic = false;
  double probability = 0.0;
  int first_hit = 1;
  int last_hit = std::numeric_limits<int>::max();
};

/// \brief What an IO-aware fault site should do, as decided by OnIoPoint.
///
/// Contract for callers wrapping a syscall:
///   - `status.ok() && !crash_after`  → perform the real operation.
///   - otherwise                      → persist at most `bytes` bytes of the
///     intended write (0 for non-write syscalls), then: if `crash_after`,
///     call FaultRegistry::CrashNow(); else set errno to `fault_errno` and
///     surface `status` (with path context added by the caller).
struct IoFault {
  Status status;
  /// The errno the failed syscall should appear to produce (EIO, ENOSPC).
  int fault_errno = 0;
  /// Bytes of the intended write to let through before failing/dying.
  size_t bytes = 0;
  /// True for torn writes: persist `bytes` bytes, then die on the spot.
  bool crash_after = false;
};

/// \brief Process-wide, deterministic fault-injection registry.
///
/// Code declares named fault *sites* (`UGUIDE_FAULT_POINT("oracle.answer")`
/// or `FaultRegistry::Global().OnPoint(...)`); a *fault plan* — a parseable
/// string, typically from a test or the CLI's `--fault-plan` — decides what
/// happens there. With no plan loaded the registry is off and a site costs
/// one relaxed atomic load, so production paths can keep their fault points
/// compiled in.
///
/// Plan grammar (clauses separated by ';', spaces ignored):
///
///   plan    := clause (';' clause)*
///   clause  := "seed=" uint64
///            | site '=' action ('@' trigger)?
///   action  := "unavailable" | "latency:" ms | "crash"
///            | "eio" | "enospc"          syscall-level disk faults
///            | "short:" N                write N bytes, then ENOSPC
///            | "torn:" N                 write N bytes, then die
///   trigger := 'p' float          probability per hit (seeded)
///            | N                  exactly the N-th hit (1-based)
///            | N '-' M            hits N..M inclusive
///            | N '+'              every hit from N on
///
/// Without a trigger the rule fires on every hit. Examples:
///
///   "oracle.answer=unavailable@1-3"            first three answers fail
///   "oracle.answer=latency:50@p0.25;seed=9"    a quarter of answers slow
///   "session.record=crash@4"                   die after the 4th record
///
/// Determinism: hit counters are per site, probability draws come from one
/// seeded Rng in clause order, and latency advances a *virtual* clock
/// (`Now()`) instead of sleeping — a plan therefore produces the identical
/// fault sequence on every run, which the kill/resume and deadline tests
/// rely on.
class FaultRegistry {
 public:
  /// Exit code of the kCrash action, asserted by kill/resume tests.
  static constexpr int kCrashExitCode = 42;

  /// The process-wide registry instance.
  static FaultRegistry& Global();

  /// Parses `plan` and replaces the active plan (counters and clock reset).
  /// An empty plan disables the registry.
  Status LoadPlan(std::string_view plan);

  /// Disables the registry and clears rules, counters, and the clock skew.
  void Reset();

  /// True iff a non-empty plan is loaded. Single relaxed atomic load; the
  /// fast-path gate for every fault point.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fires the fault site: bumps its hit counter and applies every matching
  /// rule. kLatency advances the virtual clock and the call still succeeds;
  /// kUnavailable returns a transient error; kCrash terminates the process
  /// with kCrashExitCode (the whole point: nothing gets to flush except
  /// what was already fsync'd). No-op returning OK when no rule matches.
  Status OnPoint(std::string_view site);

  /// IO-aware variant for code wrapping real syscalls (the journal's
  /// open/write/fsync/rename paths). Same counting and trigger semantics as
  /// OnPoint, but byte-limited actions (short:N, torn:N) come back as data
  /// instead of degrading: the caller persists the partial write itself and
  /// then fails or dies per the IoFault contract. kCrash still terminates
  /// inside this call.
  IoFault OnIoPoint(std::string_view site);

  /// Terminates the process with kCrashExitCode, flushing nothing. Callers
  /// honouring IoFault::crash_after use this so the exit code matches what
  /// the kill/restart harnesses expect.
  [[noreturn]] static void CrashNow();

  /// How many times `site` has fired since the plan was loaded.
  int HitCount(std::string_view site) const;

  /// The fault-aware clock: steady_clock plus all injected/modelled
  /// latency. Deadline checks throughout the library read this clock so
  /// latency plans can push them over the edge deterministically.
  std::chrono::steady_clock::time_point Now() const;

  /// Advances the virtual clock, modelling a wait without sleeping (used
  /// by retry backoff and the latency action).
  void AdvanceClockMs(double ms);

  /// Parsed view of the active rules (for tests and diagnostics).
  std::vector<FaultRule> rules() const;

 private:
  FaultRegistry() = default;

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::vector<FaultRule> rules_;
  std::unordered_map<std::string, int> hits_;
  std::optional<Rng> rng_;
  std::atomic<int64_t> clock_skew_us_{0};
};

}  // namespace uguide

/// Fires a named fault site from a Status-returning function: injected
/// unavailability propagates to the caller. Zero-cost (one relaxed load)
/// when no plan is loaded.
#define UGUIDE_FAULT_POINT(site)                                      \
  do {                                                                \
    if (::uguide::FaultRegistry::Global().enabled()) {                \
      ::uguide::Status _uguide_fault =                                \
          ::uguide::FaultRegistry::Global().OnPoint(site);            \
      if (!_uguide_fault.ok()) return _uguide_fault;                  \
    }                                                                 \
  } while (false)

#endif  // UGUIDE_COMMON_FAULT_INJECTION_H_
