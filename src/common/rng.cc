#include "common/rng.h"

#include <cmath>

namespace uguide {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed with SplitMix64 as recommended by the xoshiro authors;
  // guarantees a non-zero state.
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  UGUIDE_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  UGUIDE_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    UGUIDE_CHECK(w >= 0) << "negative sampling weight";
    total += w;
  }
  UGUIDE_CHECK(total > 0) << "all sampling weights are zero";
  double r = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double s) {
  UGUIDE_CHECK(n > 0);
  std::vector<double> weights(n);
  for (size_t r = 0; r < n; ++r) {
    weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  return NextWeighted(weights);
}

}  // namespace uguide
