#ifndef UGUIDE_COMMON_THREAD_POOL_H_
#define UGUIDE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace uguide {

/// \brief A fixed-size pool of worker threads with fork/join helpers.
///
/// The pool is the library's shared threading substrate: FD discovery
/// shards lattice levels across it, and later subsystems (error injection,
/// concurrent sessions) are expected to reuse it rather than spawn their
/// own threads. Construction is cheap when `num_threads <= 1` (no workers
/// are spawned and every call runs inline on the caller), so code can hold
/// a pool unconditionally and let the thread count decide serial vs
/// parallel execution.
///
/// `num_threads` counts the calling thread: a pool built with N spawns
/// N - 1 workers, and ParallelFor has the caller participate, so exactly N
/// strands execute loop bodies.
///
/// The library itself is exception-free (see DESIGN.md §5), but tasks may
/// still throw — std::bad_alloc, or user callbacks running on the pool. A
/// throwing task no longer terminates the process or deadlocks a join:
/// ParallelFor rethrows the first exception on the calling thread after
/// all strands have stopped (remaining iterations are abandoned at chunk
/// granularity), and an exception from a Submit task is captured and
/// surfaced via TakeSubmitError().
class ThreadPool {
 public:
  /// Passing kAuto sizes the pool to std::thread::hardware_concurrency().
  static constexpr int kAuto = 0;

  explicit ThreadPool(int num_threads = kAuto);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The resolved strand count (>= 1): the constructor argument, or the
  /// detected hardware concurrency under kAuto.
  int num_threads() const { return num_threads_; }

  /// Enqueues `task` for asynchronous execution on a worker. In the
  /// single-threaded fallback the task runs synchronously, inline (an
  /// exception then propagates directly to the caller).
  void Submit(std::function<void()> task);

  /// The first exception thrown by a Submit task on a worker since the
  /// last call, or null. Calling this clears the slot.
  std::exception_ptr TakeSubmitError();

  /// Runs fn(i) for every i in [0, n), blocking until all calls return.
  /// The calling thread participates, so the loop makes progress even when
  /// all workers are busy. With <= 1 thread or n == 1 the loop runs inline
  /// on the caller in index order — the graceful serial fallback.
  ///
  /// Iterations are claimed dynamically in chunks, so `fn` must be safe to
  /// call concurrently from several threads and must not itself call
  /// ParallelFor on the same pool (no nested forks: a worker blocking on an
  /// inner join could deadlock the outer one).
  ///
  /// If fn throws, the loop is cancelled at chunk granularity (some
  /// iterations may never run), every strand is joined, and the first
  /// exception is rethrown here on the calling thread. The pool remains
  /// usable afterwards.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Maps `fn` over `items`, returning the results in input order
  /// (deterministic regardless of thread count). Same requirements on `fn`
  /// as ParallelFor; the result type must be default-constructible.
  template <typename In, typename Fn>
  auto ParallelMap(const std::vector<In>& items, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const In&>> {
    std::vector<std::invoke_result_t<Fn&, const In&>> out(items.size());
    ParallelFor(items.size(), [&](size_t i) { out[i] = fn(items[i]); });
    return out;
  }

 private:
  void WorkerMain();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  /// First exception thrown by a Submit task on a worker (guarded by mu_).
  std::exception_ptr submit_error_;
};

}  // namespace uguide

#endif  // UGUIDE_COMMON_THREAD_POOL_H_
