#include "common/status.h"

namespace uguide {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace uguide
