#ifndef UGUIDE_COMMON_CSV_H_
#define UGUIDE_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace uguide {

/// \brief A parsed CSV file: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// \brief Minimal RFC-4180 CSV support: quoted fields, embedded commas,
/// doubled quotes, and both \n and \r\n line endings.
///
/// Parses CSV text. Every row must have the same number of fields as the
/// header; returns InvalidArgument otherwise.
Result<CsvTable> ParseCsv(std::string_view text);

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Serializes a table to CSV text, quoting fields when needed.
std::string WriteCsv(const CsvTable& table);

/// Writes a table to disk as CSV.
Status WriteCsvFile(const CsvTable& table, const std::string& path);

}  // namespace uguide

#endif  // UGUIDE_COMMON_CSV_H_
