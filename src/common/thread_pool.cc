#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace uguide {

ThreadPool::ThreadPool(int num_threads) {
  UGUIDE_CHECK(num_threads >= 0);
  if (num_threads == kAuto) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(num_threads, 1);
  // The caller is strand #0; spawn the rest. num_threads_ == 1 spawns
  // nothing and every entry point degrades to an inline call.
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: ParallelFor joins depend on
      // every submitted task eventually running.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  UGUIDE_CHECK(task != nullptr);
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Fork/join state lives on the caller's stack: the join below guarantees
  // every helper task has finished (and released `mu`) before it goes out
  // of scope.
  struct ForState {
    std::atomic<size_t> next{0};
    size_t n = 0;
    size_t chunk = 1;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable done;
    int pending = 0;
  };
  ForState state;
  state.n = n;
  state.fn = &fn;
  const size_t strands = std::min(workers_.size() + 1, n);
  // Chunked dynamic claiming: big enough to amortize the atomic, small
  // enough to balance skewed per-iteration cost (partition products vary
  // wildly in size).
  state.chunk = std::max<size_t>(1, n / (strands * 8));
  const int helpers = static_cast<int>(strands) - 1;
  state.pending = helpers;

  auto drain = [](ForState* s) {
    size_t start;
    while ((start = s->next.fetch_add(s->chunk, std::memory_order_relaxed)) <
           s->n) {
      const size_t end = std::min(s->n, start + s->chunk);
      for (size_t i = start; i < end; ++i) (*s->fn)(i);
    }
  };
  for (int h = 0; h < helpers; ++h) {
    Submit([&state, drain] {
      drain(&state);
      // Notify under the lock: the caller may only destroy `state` after
      // this task released `mu`, which its join's wait() re-acquisition
      // enforces.
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.pending == 0) state.done.notify_one();
    });
  }
  drain(&state);
  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&state] { return state.pending == 0; });
}

}  // namespace uguide
