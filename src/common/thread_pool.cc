#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace uguide {

ThreadPool::ThreadPool(int num_threads) {
  UGUIDE_CHECK(num_threads >= 0);
  if (num_threads == kAuto) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(num_threads, 1);
  // The caller is strand #0; spawn the rest. num_threads_ == 1 spawns
  // nothing and every entry point degrades to an inline call.
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: ParallelFor joins depend on
      // every submitted task eventually running.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      // A throwing task must not take the worker (and the process) down.
      // Keep the first exception for TakeSubmitError; ParallelFor's helper
      // tasks catch their own exceptions and never reach this.
      std::lock_guard<std::mutex> lock(mu_);
      if (!submit_error_) submit_error_ = std::current_exception();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  UGUIDE_CHECK(task != nullptr);
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

std::exception_ptr ThreadPool::TakeSubmitError() {
  std::lock_guard<std::mutex> lock(mu_);
  std::exception_ptr error = submit_error_;
  submit_error_ = nullptr;
  return error;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Fork/join state lives on the caller's stack: the join below guarantees
  // every helper task has finished (and released `mu`) before it goes out
  // of scope.
  struct ForState {
    std::atomic<size_t> next{0};
    size_t n = 0;
    size_t chunk = 1;
    const std::function<void(size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable done;
    int pending = 0;
    /// Set when any strand throws: remaining strands stop claiming chunks.
    std::atomic<bool> cancelled{false};
    /// First exception thrown by any strand (guarded by mu).
    std::exception_ptr error;
  };
  ForState state;
  state.n = n;
  state.fn = &fn;
  const size_t strands = std::min(workers_.size() + 1, n);
  // Chunked dynamic claiming: big enough to amortize the atomic, small
  // enough to balance skewed per-iteration cost (partition products vary
  // wildly in size).
  state.chunk = std::max<size_t>(1, n / (strands * 8));
  const int helpers = static_cast<int>(strands) - 1;
  state.pending = helpers;

  auto drain = [](ForState* s) {
    size_t start;
    // Cancellation is polled per chunk (the claim loop only), keeping the
    // inner iteration loop free of extra loads.
    while (!s->cancelled.load(std::memory_order_relaxed) &&
           (start = s->next.fetch_add(s->chunk, std::memory_order_relaxed)) <
               s->n) {
      const size_t end = std::min(s->n, start + s->chunk);
      for (size_t i = start; i < end; ++i) (*s->fn)(i);
    }
  };
  // A strand that throws records the first exception, cancels the claim
  // loop, and still reports completion — the join below must always see
  // every strand finish, or `state` would be destroyed under a live task.
  auto capture = [](ForState* s) {
    s->cancelled.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s->mu);
    if (!s->error) s->error = std::current_exception();
  };
  for (int h = 0; h < helpers; ++h) {
    Submit([&state, drain, capture] {
      try {
        drain(&state);
      } catch (...) {
        capture(&state);
      }
      // Notify under the lock: the caller may only destroy `state` after
      // this task released `mu`, which its join's wait() re-acquisition
      // enforces.
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.pending == 0) state.done.notify_one();
    });
  }
  try {
    drain(&state);
  } catch (...) {
    capture(&state);
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&state] { return state.pending == 0; });
  const std::exception_ptr error = state.error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace uguide
