#ifndef UGUIDE_COMMON_RESULT_H_
#define UGUIDE_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace uguide {

/// \brief Holds either a value of type T or an error Status.
///
/// A Result produced from an OK Status is invalid; construct Results either
/// from a value or from a non-OK Status.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit by design, mirroring
  /// arrow::Result, so `return value;` works in Result-returning functions).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    UGUIDE_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the held value. Aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    UGUIDE_CHECK(ok()) << "Result::ValueOrDie on error: "
                       << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }

  T& ValueOrDie() & {
    UGUIDE_CHECK(ok()) << "Result::ValueOrDie on error: "
                       << std::get<Status>(repr_).ToString();
    return std::get<T>(repr_);
  }

  T&& ValueOrDie() && {
    UGUIDE_CHECK(ok()) << "Result::ValueOrDie on error: "
                       << std::get<Status>(repr_).ToString();
    return std::move(std::get<T>(repr_));
  }

  /// Convenience accessors mirroring ValueOrDie.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace uguide

/// Evaluates a Result-returning expression, propagating errors; on success
/// assigns the value to `lhs` (which must be a declaration or lvalue).
#define UGUIDE_ASSIGN_OR_RETURN(lhs, expr)        \
  UGUIDE_ASSIGN_OR_RETURN_IMPL(                   \
      UGUIDE_CONCAT_(_result_, __LINE__), lhs, expr)

#define UGUIDE_CONCAT_INNER_(a, b) a##b
#define UGUIDE_CONCAT_(a, b) UGUIDE_CONCAT_INNER_(a, b)

#define UGUIDE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie();

#endif  // UGUIDE_COMMON_RESULT_H_
