#ifndef UGUIDE_COMMON_STRING_POOL_H_
#define UGUIDE_COMMON_STRING_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace uguide {

/// Dictionary code for a cell value. Codes are dense, starting at 0.
using ValueCode = int32_t;

/// Sentinel for "no value" (used before a cell is assigned).
inline constexpr ValueCode kNullValueCode = -1;

/// \brief Interns strings to dense integer codes.
///
/// Relations store dictionary codes instead of strings, so value equality --
/// the only operation FD machinery needs -- is an integer compare. The pool
/// is append-only; codes remain stable for the pool's lifetime.
class StringPool {
 public:
  StringPool() = default;

  StringPool(const StringPool&) = default;
  StringPool& operator=(const StringPool&) = default;
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  /// Returns the code for `value`, interning it on first sight.
  ValueCode Intern(std::string_view value);

  /// Returns the code for `value` or kNullValueCode if never interned.
  ValueCode Find(std::string_view value) const;

  /// Returns the string for a valid code.
  const std::string& Lookup(ValueCode code) const;

  /// Number of distinct interned strings.
  size_t Size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueCode> index_;
};

}  // namespace uguide

#endif  // UGUIDE_COMMON_STRING_POOL_H_
