#ifndef UGUIDE_COMMON_SPAN_H_
#define UGUIDE_COMMON_SPAN_H_

#include <cstddef>
#include <ostream>
#include <vector>

#include "common/check.h"

namespace uguide {

/// \brief A non-owning view over a contiguous run of const T.
///
/// The return type of the CSR accessors (Partition classes, ViolationGraph
/// adjacency rows): callers iterate a slice of one flat backing array
/// without copying and without the pointer-chasing of nested vectors.
/// Drop-in for the read-only surface of `const std::vector<T>&` (range-for,
/// size/empty, operator[]); comparable against vectors and other spans so
/// the equivalence suites can keep using EXPECT_EQ.
template <typename T>
class ConstSpan {
 public:
  constexpr ConstSpan() = default;
  constexpr ConstSpan(const T* data, size_t size) : data_(data), size_(size) {}
  ConstSpan(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }
  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const {
    UGUIDE_DCHECK(i < size_);
    return data_[i];
  }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

template <typename T>
bool operator==(ConstSpan<T> a, ConstSpan<T> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <typename T>
bool operator!=(ConstSpan<T> a, ConstSpan<T> b) {
  return !(a == b);
}

template <typename T>
bool operator==(ConstSpan<T> a, const std::vector<T>& b) {
  return a == ConstSpan<T>(b);
}

template <typename T>
bool operator==(const std::vector<T>& a, ConstSpan<T> b) {
  return ConstSpan<T>(a) == b;
}

template <typename T>
bool operator!=(ConstSpan<T> a, const std::vector<T>& b) {
  return !(a == b);
}

template <typename T>
bool operator!=(const std::vector<T>& a, ConstSpan<T> b) {
  return !(a == b);
}

/// gtest-friendly printer (element-wise, capped).
template <typename T>
std::ostream& operator<<(std::ostream& os, ConstSpan<T> span) {
  os << "[";
  for (size_t i = 0; i < span.size() && i < 32; ++i) {
    if (i != 0) os << ", ";
    os << span[i];
  }
  if (span.size() > 32) os << ", ...";
  return os << "]";
}

}  // namespace uguide

#endif  // UGUIDE_COMMON_SPAN_H_
