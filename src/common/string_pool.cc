#include "common/string_pool.h"

#include "common/check.h"

namespace uguide {

ValueCode StringPool::Intern(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  ValueCode code = static_cast<ValueCode>(values_.size());
  values_.emplace_back(value);
  index_.emplace(values_.back(), code);
  return code;
}

ValueCode StringPool::Find(std::string_view value) const {
  auto it = index_.find(std::string(value));
  return it == index_.end() ? kNullValueCode : it->second;
}

const std::string& StringPool::Lookup(ValueCode code) const {
  UGUIDE_CHECK(code >= 0 && static_cast<size_t>(code) < values_.size())
      << "invalid value code " << code;
  return values_[static_cast<size_t>(code)];
}

}  // namespace uguide
