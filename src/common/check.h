#ifndef UGUIDE_COMMON_CHECK_H_
#define UGUIDE_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace uguide::internal {

/// \brief Streams a fatal message and aborts when destroyed.
///
/// Supports the `UGUIDE_CHECK(cond) << "detail"` idiom: the destructor of the
/// temporary prints everything streamed into it and calls std::abort().
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "Check failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed values when a check passes.
class NullMessage {
 public:
  template <typename T>
  NullMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace uguide::internal

/// Aborts the process with a message when `condition` is false. Supports
/// streaming extra detail: UGUIDE_CHECK(x > 0) << "x was " << x;
/// For internal invariants only; recoverable errors use Status/Result.
/// (The while-loop form never iterates: FatalMessage's destructor aborts.)
#define UGUIDE_CHECK(condition)               \
  while (!(condition))                        \
  ::uguide::internal::FatalMessage(__FILE__, __LINE__, #condition)

#define UGUIDE_CHECK_BINOP(a, b, op) UGUIDE_CHECK((a)op(b))

#define UGUIDE_CHECK_EQ(a, b) UGUIDE_CHECK_BINOP(a, b, ==)
#define UGUIDE_CHECK_NE(a, b) UGUIDE_CHECK_BINOP(a, b, !=)
#define UGUIDE_CHECK_LT(a, b) UGUIDE_CHECK_BINOP(a, b, <)
#define UGUIDE_CHECK_LE(a, b) UGUIDE_CHECK_BINOP(a, b, <=)
#define UGUIDE_CHECK_GT(a, b) UGUIDE_CHECK_BINOP(a, b, >)
#define UGUIDE_CHECK_GE(a, b) UGUIDE_CHECK_BINOP(a, b, >=)

#ifdef NDEBUG
#define UGUIDE_DCHECK(condition) \
  while (false) UGUIDE_CHECK(condition)
#else
#define UGUIDE_DCHECK(condition) UGUIDE_CHECK(condition)
#endif

#endif  // UGUIDE_COMMON_CHECK_H_
