#ifndef UGUIDE_COMMON_HASH_H_
#define UGUIDE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace uguide {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe with a
/// 64-bit constant).
template <typename T>
void HashCombine(size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
          (seed >> 4);
}

/// Hash functor for std::pair, for unordered containers keyed by pairs.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = 0;
    HashCombine(seed, p.first);
    HashCombine(seed, p.second);
    return seed;
  }
};

}  // namespace uguide

#endif  // UGUIDE_COMMON_HASH_H_
