#ifndef UGUIDE_LIVE_LIVE_RELATION_H_
#define UGUIDE_LIVE_LIVE_RELATION_H_

#include <cstdint>
#include <vector>

#include "discovery/partition.h"
#include "live/mutation.h"
#include "relation/relation.h"

namespace uguide {

/// \brief A relation that accepts mutations, plus the per-column group
/// index that turns them into O(Δ) partition maintenance.
///
/// The wrapped Relation is the single source of truth; alongside it the
/// class maintains, for every column, the value-code → member-rows mapping
/// (members ascending). A mutation moves the touched rows between groups
/// in O(Δ log k); ColumnPartition() then emits the canonical stripped CSR
/// — groups of size ≥ 2, ordered by ascending first member, members
/// ascending — which is byte-identical to Partition::ForColumn over the
/// mutated relation (the storm suite asserts this at every epoch).
///
/// Deletes are tombstones: the dead row keeps its TupleId but every cell
/// is rewritten to a per-cell-unique sentinel, so the row is a singleton
/// in every projection and vanishes from all stripped partitions and
/// violation sets. The alive bitmap refuses later ops on dead rows.
///
/// Not thread-safe: the owner (LiveDataset) serializes Apply against its
/// epoch construction. Readers never touch a LiveRelation — each epoch
/// snapshots an immutable Relation copy.
class LiveRelation {
 public:
  explicit LiveRelation(Relation base);

  const Relation& relation() const { return relation_; }
  DataVersion version() const { return version_; }
  TupleId NumRows() const { return relation_.NumRows(); }

  bool Alive(TupleId row) const {
    return row >= 0 && row < NumRows() &&
           alive_[static_cast<size_t>(row)] != 0;
  }
  /// Rows not yet tombstoned.
  TupleId NumAlive() const { return num_alive_; }

  /// Applies `batch` op by op. Invalid ops (dead or out-of-range row,
  /// arity mismatch) are refused individually and counted; the rest of
  /// the batch still applies. The version advances by one iff at least
  /// one op applied. The receipt's scope covers applied ops only.
  MutationReceipt Apply(const MutationBatch& batch);

  /// Emits the canonical stripped partition of `col` from the group index
  /// — byte-identical to Partition::ForColumn(relation(), col).
  Partition ColumnPartition(int col) const;

  /// Heap footprint of the group index (observability; the relation and
  /// partitions account for themselves).
  size_t ApproxIndexBytes() const;

 private:
  /// The per-cell-unique tombstone value for (row, col). Uses an ASCII
  /// control prefix no CSV-loaded or generated value contains.
  static std::string Tombstone(TupleId row, int col);

  /// Moves `row` out of its current group in `col` (value about to
  /// change). O(log k + k) for a size-k group.
  void RemoveFromGroup(int col, TupleId row);
  /// Inserts `row` into the group of its (new) code in `col`, keeping
  /// members ascending.
  void InsertIntoGroup(int col, TupleId row);

  Relation relation_;
  DataVersion version_ = 0;
  std::vector<uint8_t> alive_;
  TupleId num_alive_ = 0;
  /// groups_[col][code] = rows holding `code` in `col`, ascending. Codes
  /// are pool-wide dense, so the inner vector is indexed directly; it
  /// grows lazily as SetValue interns new values.
  std::vector<std::vector<std::vector<TupleId>>> groups_;
};

}  // namespace uguide

#endif  // UGUIDE_LIVE_LIVE_RELATION_H_
