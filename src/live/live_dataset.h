#ifndef UGUIDE_LIVE_LIVE_DATASET_H_
#define UGUIDE_LIVE_LIVE_DATASET_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/session.h"
#include "discovery/partition.h"
#include "live/live_relation.h"
#include "live/live_violation_index.h"
#include "live/mutation.h"
#include "violations/bipartite_graph.h"
#include "violations/violation_engine.h"

namespace uguide {

class ThreadPool;

/// \brief One immutable serving epoch of a live dataset.
///
/// Everything a served session touches — the rebased Session (with E_T
/// recomputed against the mutated table), a warmed violation engine, and
/// the violation graph — frozen at one data version. Sessions pin the
/// epoch's shared_ptr, so a long-running session keeps its epoch alive
/// after the ring has moved on.
///
/// The graph is materialized lazily: an epoch publishes only the frozen
/// per-FD cell-vector handles (an O(#FDs) snapshot of the live index) and
/// graph() runs the deterministic merge on first access. A mutation burst
/// of k batches therefore pays k incremental cell recomputes but at most
/// one merge — only for the epoch a session actually opens against —
/// while the result remains byte-identical to a full rebuild.
struct LiveEpoch {
  DataVersion version = 0;
  /// Content hash of the *base* relation: the identity pair pinned into
  /// journals is (content_hash, version), so no per-epoch O(n) rehash.
  uint64_t content_hash = 0;
  std::shared_ptr<const Session> session;
  std::shared_ptr<ViolationEngine> engine;

  /// The epoch's violation graph, materialized on first access
  /// (thread-safe; epoch 0 returns the prebuilt base graph directly).
  const ViolationGraph& graph() const;

  /// Epoch 0's registry-owned graph; null for mutated epochs, which merge
  /// from the handles below instead.
  std::shared_ptr<const ViolationGraph> prebuilt;
  /// Frozen merge inputs: the candidate FDs and their cell vectors at this
  /// version (untouched FDs share handles with neighboring epochs).
  std::vector<Fd> fds;
  std::vector<LiveViolationIndex::CellVector> per_fd;

 private:
  mutable std::once_flag graph_once_;
  mutable std::shared_ptr<const ViolationGraph> graph_;
};

struct LiveDatasetOptions {
  /// Epochs kept resumable. A resume pinned to an older version than the
  /// ring retains is refused with `version_mismatch`.
  size_t epoch_ring = 8;
};

/// \brief The mutation subsystem: a versioned dataset that serves sessions
/// while its data never stops changing.
///
/// Epoch 0 wraps the immutable base artifacts (the DatasetRegistry's
/// session/engine/graph) without owning them. Each applied batch advances
/// the LiveRelation, patches the long-lived partition store for exactly
/// the dirty attribute scope (PartitionStore::AdvanceTo), recomputes
/// violation-cell vectors only for FDs the scope touches, and publishes a
/// new epoch whose engine is pre-seeded with every surviving partition —
/// byte-identical to rebuilding everything from scratch, at a fraction of
/// the work (DESIGN.md §15; BENCH_live.json quantifies it).
///
/// Thread safety: Apply/Current/AtVersion are mutex-serialized; the
/// epochs they hand out are immutable (the engine is internally locked),
/// so any number of served sessions run against them without the lock.
class LiveDataset {
 public:
  /// `base`, `base_engine`, `base_graph` and `pool` must outlive the
  /// dataset; they are served as epoch 0 without being copied.
  /// `content_hash` is the base relation's content hash (the registry
  /// key's, for served datasets).
  LiveDataset(const Session* base, ViolationEngine* base_engine,
              const ViolationGraph* base_graph, uint64_t content_hash,
              ThreadPool* pool, LiveDatasetOptions options = {});

  /// The newest epoch. Never null.
  std::shared_ptr<const LiveEpoch> Current() const;

  /// The epoch at `version` if the ring still holds it, else null (the
  /// caller turns that into a `version_mismatch` refusal).
  std::shared_ptr<const LiveEpoch> AtVersion(DataVersion version) const;

  uint64_t content_hash() const { return content_hash_; }

  /// Applies one batch and, if anything applied, publishes the next
  /// epoch. Refused ops are counted in the receipt; a fully refused
  /// batch leaves the version (and the current epoch) unchanged.
  MutationReceipt Apply(const MutationBatch& batch);

  struct Stats {
    int64_t batches_applied = 0;
    int64_t ops_applied = 0;
    int64_t ops_refused = 0;
    int64_t fds_recomputed = 0;
    int64_t fds_skipped = 0;
  };
  Stats stats() const;

 private:
  const Session* base_;
  const uint64_t content_hash_;
  ThreadPool* pool_;
  const LiveDatasetOptions options_;

  mutable std::mutex mu_;
  LiveRelation relation_;
  /// The long-lived store carrying partitions across epochs: canonical
  /// column singles (pinned, patched in place by AdvanceTo) plus products
  /// harvested back from outgoing epoch engines (dropped when dirty).
  PartitionStore store_;
  LiveViolationIndex index_;
  std::vector<std::shared_ptr<const LiveEpoch>> ring_;
  int64_t batches_applied_ = 0;
  int64_t ops_applied_ = 0;
  int64_t ops_refused_ = 0;
};

}  // namespace uguide

#endif  // UGUIDE_LIVE_LIVE_DATASET_H_
