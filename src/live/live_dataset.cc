#include "live/live_dataset.h"

#include <utility>

#include "common/thread_pool.h"

namespace uguide {

namespace {

/// Wraps a caller-owned pointer as a non-owning shared_ptr (epoch 0 serves
/// the registry's artifacts without copying or adopting them).
template <typename T>
std::shared_ptr<T> Unowned(T* ptr) {
  return std::shared_ptr<T>(ptr, [](T*) {});
}

}  // namespace

const ViolationGraph& LiveEpoch::graph() const {
  std::call_once(graph_once_, [this] {
    graph_ = prebuilt != nullptr
                 ? prebuilt
                 : std::make_shared<const ViolationGraph>(
                       ViolationGraph::FromPerFdCells(fds, per_fd));
  });
  return *graph_;
}

LiveDataset::LiveDataset(const Session* base, ViolationEngine* base_engine,
                         const ViolationGraph* base_graph,
                         uint64_t content_hash, ThreadPool* pool,
                         LiveDatasetOptions options)
    : base_(base),
      content_hash_(content_hash),
      pool_(pool),
      options_(options),
      relation_(base->dirty()),
      store_(&relation_.relation(), /*budget=*/nullptr),
      index_(*base_graph) {
  UGUIDE_CHECK(base != nullptr && base_engine != nullptr &&
               base_graph != nullptr);
  UGUIDE_CHECK(options_.epoch_ring >= 1);
  // Seed the cross-epoch store with the canonical column partitions; they
  // are pinned and patched in place by AdvanceTo, never recomputed from
  // scratch. Products arrive later, harvested from outgoing epochs.
  for (int c = 0; c < relation_.relation().NumAttributes(); ++c) {
    store_.PutShared(
        AttributeSet::Single(c),
        std::make_shared<const Partition>(
            Partition::ForColumn(relation_.relation(), c)),
        /*pinned=*/true);
  }
  auto epoch = std::make_shared<LiveEpoch>();
  epoch->version = 0;
  epoch->content_hash = content_hash_;
  epoch->session = Unowned(base);
  epoch->engine = Unowned(base_engine);
  epoch->prebuilt = Unowned(base_graph);
  ring_.push_back(std::move(epoch));
}

std::shared_ptr<const LiveEpoch> LiveDataset::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.back();
}

std::shared_ptr<const LiveEpoch> LiveDataset::AtVersion(
    DataVersion version) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& epoch : ring_) {
    if (epoch->version == version) return epoch;
  }
  return nullptr;
}

MutationReceipt LiveDataset::Apply(const MutationBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Harvest the outgoing epoch's products first: partitions its sessions
  // computed on demand flow back into the cross-epoch store, and the
  // AdvanceTo below keeps exactly the ones the mutation scope leaves
  // clean. (PutShared no-ops on the already-resident singles.)
  for (auto& [attrs, handle] : ring_.back()->engine->StorePartitions()) {
    if (attrs.Empty()) continue;  // trivial to rebuild; row census may move
    store_.PutShared(attrs, std::move(handle), /*pinned=*/attrs.Size() == 1);
  }

  MutationReceipt receipt = relation_.Apply(batch);
  ops_applied_ += receipt.applied;
  ops_refused_ += receipt.refused;
  if (receipt.applied == 0) return receipt;
  ++batches_applied_;

  // Patch the store for the dirty scope: singles in place (O(Δ) group
  // moves already happened inside LiveRelation; emission is linear in the
  // touched column), dirty products dropped, clean entries carried over.
  store_.AdvanceTo(receipt.version, receipt.scope.attrs, [&](int col) {
    return std::make_shared<const Partition>(relation_.ColumnPartition(col));
  });

  // Publish the next epoch: rebased session (E_T recomputed against the
  // mutated table), an engine pre-seeded with every surviving partition,
  // and the merge inputs for a graph assembled lazily from vectors where
  // only scope-touching FDs were re-scanned — byte-identical to a full
  // rebuild when (and only if) a session materializes it.
  auto session = std::make_shared<const Session>(
      Session::Rebase(*base_, relation_.relation()));
  auto engine = std::make_shared<ViolationEngine>(&session->dirty(),
                                                  /*budget=*/nullptr);
  for (auto& [attrs, handle] : store_.Snapshot()) {
    engine->SeedPartition(attrs, std::move(handle));
  }
  index_.Advance(receipt.scope.attrs, *engine, pool_);

  auto epoch = std::make_shared<LiveEpoch>();
  epoch->version = receipt.version;
  epoch->content_hash = content_hash_;
  epoch->session = std::move(session);
  epoch->engine = std::move(engine);
  epoch->fds = index_.fds();
  epoch->per_fd = index_.Snapshot();
  ring_.push_back(std::move(epoch));
  if (ring_.size() > options_.epoch_ring) ring_.erase(ring_.begin());
  return receipt;
}

LiveDataset::Stats LiveDataset::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.batches_applied = batches_applied_;
  stats.ops_applied = ops_applied_;
  stats.ops_refused = ops_refused_;
  stats.fds_recomputed = index_.fds_recomputed();
  stats.fds_skipped = index_.fds_skipped();
  return stats;
}

}  // namespace uguide
