#include "live/live_violation_index.h"

#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "violations/violation_engine.h"

namespace uguide {

namespace {

/// Freezes a freshly computed cell vector behind a shared handle.
LiveViolationIndex::CellVector Freeze(std::vector<Cell> cells) {
  return std::make_shared<const std::vector<Cell>>(std::move(cells));
}

}  // namespace

LiveViolationIndex::LiveViolationIndex(const ViolationGraph& base) {
  fds_.reserve(static_cast<size_t>(base.NumFds()));
  per_fd_.reserve(static_cast<size_t>(base.NumFds()));
  for (FdId f = 0; f < base.NumFds(); ++f) {
    fds_.push_back(base.fd(f));
    std::vector<Cell> cells;
    const ConstSpan<CellId> adj = base.CellsOfFd(f);
    cells.reserve(adj.size());
    // Frozen adjacency lists an FD's cells in interning order, which
    // within one FD is exactly the row-ascending ViolatingCells order.
    for (CellId c : adj) cells.push_back(base.cell(c));
    per_fd_.push_back(Freeze(std::move(cells)));
  }
}

LiveViolationIndex::LiveViolationIndex(const FdSet& candidates,
                                       ViolationEngine& engine,
                                       ThreadPool* pool) {
  fds_.assign(candidates.begin(), candidates.end());
  per_fd_.reserve(fds_.size());
  if (pool != nullptr && pool->num_threads() > 1 && fds_.size() > 1) {
    std::vector<std::vector<Cell>> fresh = pool->ParallelMap(
        fds_, [&](const Fd& fd) { return engine.ViolatingCells(fd); });
    for (auto& cells : fresh) per_fd_.push_back(Freeze(std::move(cells)));
  } else {
    for (const Fd& fd : fds_) {
      per_fd_.push_back(Freeze(engine.ViolatingCells(fd)));
    }
  }
}

int LiveViolationIndex::Advance(const AttributeSet& dirty,
                                ViolationEngine& engine, ThreadPool* pool) {
  // Freeze the touched-FD list, shard the recomputes, write back in FD
  // order — untouched vectors are reused verbatim, so the merge input is
  // identical to a full rebuild's at any thread count.
  std::vector<size_t> touched;
  for (size_t i = 0; i < fds_.size(); ++i) {
    const Fd& fd = fds_[i];
    if (fd.lhs.Intersects(dirty) || dirty.Contains(fd.rhs)) {
      touched.push_back(i);
    } else {
      ++fds_skipped_;
    }
  }
  if (touched.empty()) return 0;
  if (pool != nullptr && pool->num_threads() > 1 && touched.size() > 1) {
    std::vector<std::vector<Cell>> fresh = pool->ParallelMap(
        touched,
        [&](size_t i) { return engine.ViolatingCells(fds_[i]); });
    for (size_t j = 0; j < touched.size(); ++j) {
      // A fresh handle per recompute: epochs holding the old handle keep
      // seeing the old vector (copy-on-write publish).
      per_fd_[touched[j]] = Freeze(std::move(fresh[j]));
    }
  } else {
    for (size_t i : touched) {
      per_fd_[i] = Freeze(engine.ViolatingCells(fds_[i]));
    }
  }
  fds_recomputed_ += static_cast<int64_t>(touched.size());
  return static_cast<int>(touched.size());
}

ViolationGraph LiveViolationIndex::MakeGraph() const {
  return ViolationGraph::FromPerFdCells(fds_, per_fd_);
}

}  // namespace uguide
