#ifndef UGUIDE_LIVE_LIVE_VIOLATION_INDEX_H_
#define UGUIDE_LIVE_LIVE_VIOLATION_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "fd/fd.h"
#include "live/mutation.h"
#include "violations/bipartite_graph.h"

namespace uguide {

class ThreadPool;
class ViolationEngine;

/// \brief Frozen per-FD violation-cell vectors, advanced by mutation scope.
///
/// The violation graph is a pure function of (candidate FD list, per-FD
/// cell vectors) — that is the Merge contract. This index keeps those
/// vectors across epochs behind copy-on-write handles: on Advance it
/// re-runs ViolatingCells only for FDs whose LHS ∪ RHS intersects the
/// mutation scope (every other FD's projection is over untouched columns,
/// so its vector is literally unchanged — the handle is shared, not
/// copied) and MakeGraph() then assembles a graph byte-identical to a
/// fresh ViolationGraph::Build over the mutated relation. Snapshot() hands
/// an epoch the handle array in O(#FDs), so publishing an epoch never
/// touches the cell payloads; the epoch merges them lazily if a session
/// ever opens against it.
///
/// Not thread-safe; owned and serialized by LiveDataset. Advance itself
/// shards the touched FDs across `pool` with the usual freeze/shard/merge
/// discipline, so the result is thread-count invariant.
class LiveViolationIndex {
 public:
  using CellVector = std::shared_ptr<const std::vector<Cell>>;
  /// Seeds the index from a freshly built graph over the base relation
  /// (the frozen CSR adjacency *is* the per-FD cell vectors, in
  /// ViolatingCells order, so no recompute is needed).
  explicit LiveViolationIndex(const ViolationGraph& base);

  /// Seeds the index by computing every FD's cells through `engine`.
  LiveViolationIndex(const FdSet& candidates, ViolationEngine& engine,
                     ThreadPool* pool);

  /// Recomputes the cell vectors of FDs touching `dirty` against `engine`
  /// (which must already serve the mutated relation). Returns how many
  /// FDs were recomputed.
  int Advance(const AttributeSet& dirty, ViolationEngine& engine,
              ThreadPool* pool);

  /// Assembles the epoch's graph from the current vectors — byte-identical
  /// to ViolationGraph::Build over the same relation and candidates.
  ViolationGraph MakeGraph() const;

  /// The frozen candidate FD list, in graph FdId order.
  const std::vector<Fd>& fds() const { return fds_; }

  /// O(#FDs) copy of the current handle array. An epoch publishes this and
  /// merges it into a graph lazily, on first access — mutation bursts never
  /// pay the O(total cells) merge for epochs no session ever opens.
  std::vector<CellVector> Snapshot() const { return per_fd_; }

  int NumFds() const { return static_cast<int>(fds_.size()); }
  /// Total FDs recomputed across all Advance calls (observability).
  int64_t fds_recomputed() const { return fds_recomputed_; }
  /// FDs skipped because their attributes were untouched.
  int64_t fds_skipped() const { return fds_skipped_; }

 private:
  std::vector<Fd> fds_;
  std::vector<CellVector> per_fd_;
  int64_t fds_recomputed_ = 0;
  int64_t fds_skipped_ = 0;
};

}  // namespace uguide

#endif  // UGUIDE_LIVE_LIVE_VIOLATION_INDEX_H_
