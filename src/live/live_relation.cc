#include "live/live_relation.h"

#include <algorithm>
#include <string>
#include <utility>

namespace uguide {

LiveRelation::LiveRelation(Relation base)
    : relation_(std::move(base)),
      alive_(static_cast<size_t>(relation_.NumRows()), 1),
      num_alive_(relation_.NumRows()),
      groups_(static_cast<size_t>(relation_.NumAttributes())) {
  const TupleId n = relation_.NumRows();
  const size_t num_codes = relation_.pool().Size();
  for (int c = 0; c < relation_.NumAttributes(); ++c) {
    const std::vector<ValueCode>& codes = relation_.ColumnCodes(c);
    auto& column = groups_[static_cast<size_t>(c)];
    column.resize(num_codes);
    // Rows ascend, so each group comes out ascending for free.
    for (TupleId t = 0; t < n; ++t) {
      column[static_cast<size_t>(codes[static_cast<size_t>(t)])].push_back(t);
    }
  }
}

std::string LiveRelation::Tombstone(TupleId row, int col) {
  return "\x1f!dead:" + std::to_string(row) + ":" + std::to_string(col);
}

void LiveRelation::RemoveFromGroup(int col, TupleId row) {
  const ValueCode code = relation_.Code(row, col);
  std::vector<TupleId>& group =
      groups_[static_cast<size_t>(col)][static_cast<size_t>(code)];
  auto it = std::lower_bound(group.begin(), group.end(), row);
  UGUIDE_DCHECK(it != group.end() && *it == row);
  group.erase(it);
}

void LiveRelation::InsertIntoGroup(int col, TupleId row) {
  const ValueCode code = relation_.Code(row, col);
  auto& column = groups_[static_cast<size_t>(col)];
  const size_t ci = static_cast<size_t>(code);
  if (ci >= column.size()) column.resize(relation_.pool().Size());
  std::vector<TupleId>& group = column[ci];
  group.insert(std::lower_bound(group.begin(), group.end(), row), row);
}

MutationReceipt LiveRelation::Apply(const MutationBatch& batch) {
  MutationReceipt receipt;
  const int m = relation_.NumAttributes();
  for (const Mutation& op : batch.ops) {
    switch (op.kind) {
      case MutationKind::kAppend: {
        if (static_cast<int>(op.values.size()) != m) {
          ++receipt.refused;
          break;
        }
        const TupleId row = relation_.AddRow(op.values);
        alive_.push_back(1);
        ++num_alive_;
        // The new row id exceeds every existing one, so push_back order
        // keeps each group ascending.
        for (int c = 0; c < m; ++c) InsertIntoGroup(c, row);
        ++receipt.applied;
        receipt.scope.attrs = AttributeSet::Full(m);
        receipt.scope.rows.push_back(row);
        break;
      }
      case MutationKind::kUpdate: {
        if (!Alive(op.row) || op.col < 0 || op.col >= m) {
          ++receipt.refused;
          break;
        }
        RemoveFromGroup(op.col, op.row);
        relation_.SetValue(op.row, op.col, op.value);
        InsertIntoGroup(op.col, op.row);
        ++receipt.applied;
        receipt.scope.attrs = receipt.scope.attrs.With(op.col);
        receipt.scope.rows.push_back(op.row);
        break;
      }
      case MutationKind::kDelete: {
        if (!Alive(op.row)) {
          ++receipt.refused;
          break;
        }
        for (int c = 0; c < m; ++c) {
          RemoveFromGroup(c, op.row);
          relation_.SetValue(op.row, c, Tombstone(op.row, c));
          InsertIntoGroup(c, op.row);
        }
        alive_[static_cast<size_t>(op.row)] = 0;
        --num_alive_;
        ++receipt.applied;
        receipt.scope.attrs = AttributeSet::Full(m);
        receipt.scope.rows.push_back(op.row);
        break;
      }
    }
  }
  if (receipt.applied > 0) {
    ++version_;
    std::sort(receipt.scope.rows.begin(), receipt.scope.rows.end());
    receipt.scope.rows.erase(
        std::unique(receipt.scope.rows.begin(), receipt.scope.rows.end()),
        receipt.scope.rows.end());
  }
  receipt.version = version_;
  return receipt;
}

Partition LiveRelation::ColumnPartition(int col) const {
  UGUIDE_CHECK(col >= 0 && col < relation_.NumAttributes());
  // Gather groups of size >= 2 and order them by ascending first member —
  // exactly ForColumn's first-seen class order — then lay the CSR out with
  // one prefix pass and a block copy per class.
  const auto& column = groups_[static_cast<size_t>(col)];
  std::vector<const std::vector<TupleId>*> classes;
  for (const std::vector<TupleId>& group : column) {
    if (group.size() >= 2) classes.push_back(&group);
  }
  std::sort(classes.begin(), classes.end(),
            [](const std::vector<TupleId>* a, const std::vector<TupleId>* b) {
              return a->front() < b->front();
            });
  std::vector<uint32_t> offsets;
  offsets.reserve(classes.size() + 1);
  offsets.push_back(0);
  uint32_t total = 0;
  for (const std::vector<TupleId>* cls : classes) {
    total += static_cast<uint32_t>(cls->size());
    offsets.push_back(total);
  }
  std::vector<TupleId> elems;
  elems.reserve(total);
  for (const std::vector<TupleId>* cls : classes) {
    elems.insert(elems.end(), cls->begin(), cls->end());
  }
  return Partition::FromCsr(relation_.NumRows(), std::move(elems),
                            std::move(offsets));
}

size_t LiveRelation::ApproxIndexBytes() const {
  size_t bytes = alive_.size() * sizeof(uint8_t);
  for (const auto& column : groups_) {
    bytes += column.size() * sizeof(std::vector<TupleId>);
    for (const auto& group : column) bytes += group.size() * sizeof(TupleId);
  }
  return bytes;
}

}  // namespace uguide
