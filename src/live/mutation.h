#ifndef UGUIDE_LIVE_MUTATION_H_
#define UGUIDE_LIVE_MUTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/attribute_set.h"
#include "relation/relation.h"

namespace uguide {

/// Monotonically increasing version of a live relation's content. Version 0
/// is the immutable base; every applied mutation batch produces version+1.
using DataVersion = uint64_t;

/// The three mutation kinds a live relation accepts.
enum class MutationKind { kAppend, kUpdate, kDelete };

/// \brief One mutation operation.
///
/// `kAppend` adds a row from `values` (one per attribute). `kUpdate`
/// overwrites cell (`row`, `col`) with `value`. `kDelete` tombstones `row`:
/// the row keeps its TupleId (so cells, journals and reports stay stable)
/// but every one of its cells is rewritten to a per-cell-unique sentinel,
/// making the row a singleton in every projection — stripped partitions,
/// and therefore every violation set, forget it naturally.
struct Mutation {
  MutationKind kind = MutationKind::kUpdate;
  TupleId row = 0;                  ///< kUpdate / kDelete target.
  int col = 0;                      ///< kUpdate target column.
  std::string value;                ///< kUpdate replacement value.
  std::vector<std::string> values;  ///< kAppend row values.

  static Mutation Append(std::vector<std::string> values) {
    Mutation m;
    m.kind = MutationKind::kAppend;
    m.values = std::move(values);
    return m;
  }
  static Mutation Update(TupleId row, int col, std::string value) {
    Mutation m;
    m.kind = MutationKind::kUpdate;
    m.row = row;
    m.col = col;
    m.value = std::move(value);
    return m;
  }
  static Mutation Delete(TupleId row) {
    Mutation m;
    m.kind = MutationKind::kDelete;
    m.row = row;
    return m;
  }
};

/// A batch of mutations applied atomically as one epoch step.
struct MutationBatch {
  std::vector<Mutation> ops;
};

/// \brief What a batch provably touched: the dirty attribute set and the
/// affected tuples.
///
/// Scope rules (see DESIGN.md §15): an update dirties only its column —
/// every other column's code array is literally unchanged, so partitions
/// and FD projections over clean columns are identical objects. Appends
/// and deletes dirty *all* attributes: an append extends every column
/// array (and changes NumRows), a delete rewrites every cell of its row.
struct MutationScope {
  AttributeSet attrs;
  std::vector<TupleId> rows;

  bool Empty() const { return attrs.Empty() && rows.empty(); }
};

/// \brief The outcome of applying one batch.
struct MutationReceipt {
  /// The data version after the batch (unchanged when nothing applied).
  DataVersion version = 0;
  int applied = 0;
  /// Ops rejected individually (dead/out-of-range row, arity mismatch);
  /// the rest of the batch still applies.
  int refused = 0;
  MutationScope scope;
};

}  // namespace uguide

#endif  // UGUIDE_LIVE_MUTATION_H_
