#ifndef UGUIDE_DISCOVERY_TANE_H_
#define UGUIDE_DISCOVERY_TANE_H_

#include <limits>

#include "common/result.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// Options controlling FD discovery.
struct TaneOptions {
  /// Maximum g3 error for a dependency to be reported. 0 = exact FDs only;
  /// a positive value discovers approximate FDs (AFDs).
  double max_error = 0.0;

  /// Upper bound on LHS size; candidates above this are not explored.
  /// Bounding the lattice depth keeps discovery tractable on wide schemas.
  int max_lhs_size = std::numeric_limits<int>::max();

  /// When discovering AFDs (max_error > 0): if true, a set found to be an
  /// AFD prunes its specializations just like an exact FD would, so only
  /// minimal AFDs are reported. If false, only exactly-holding FDs prune.
  bool prune_on_approximate = true;

  /// Worker threads for the level-wise traversal. 1 (the default) runs
  /// fully serially; 0 uses std::thread::hardware_concurrency(). The
  /// discovered FdSet is identical for every thread count — each lattice
  /// node's dependency check and partition product is a pure function of
  /// the frozen previous level, so parallelism changes only wall-clock
  /// time (see DESIGN.md "Parallel discovery").
  int num_threads = 1;
};

/// \brief Discovers all minimal, non-trivial FDs (or AFDs) of `relation`.
///
/// Level-wise TANE (Huhtala et al. 1999): attribute-lattice traversal with
/// stripped-partition products, C+ right-hand-side candidate pruning, and
/// key pruning. This is the library's substitute for the Metanome profiler
/// used in the paper's experiments (§7.1).
///
/// FDs with an empty LHS (constant columns) are reported when applicable.
Result<FdSet> DiscoverFds(const Relation& relation,
                          const TaneOptions& options = {});

}  // namespace uguide

#endif  // UGUIDE_DISCOVERY_TANE_H_
