#ifndef UGUIDE_DISCOVERY_TANE_H_
#define UGUIDE_DISCOVERY_TANE_H_

#include <cstddef>
#include <limits>

#include "common/memory_budget.h"
#include "common/result.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// Options controlling FD discovery.
struct TaneOptions {
  /// Maximum g3 error for a dependency to be reported. 0 = exact FDs only;
  /// a positive value discovers approximate FDs (AFDs).
  double max_error = 0.0;

  /// Upper bound on LHS size; candidates above this are not explored.
  /// Bounding the lattice depth keeps discovery tractable on wide schemas.
  int max_lhs_size = std::numeric_limits<int>::max();

  /// When discovering AFDs (max_error > 0): if true, a set found to be an
  /// AFD prunes its specializations just like an exact FD would, so only
  /// minimal AFDs are reported. If false, only exactly-holding FDs prune.
  bool prune_on_approximate = true;

  /// Worker threads for the level-wise traversal. 1 (the default) runs
  /// fully serially; 0 uses std::thread::hardware_concurrency(). The
  /// discovered FdSet is identical for every thread count — each lattice
  /// node's dependency check and partition product is a pure function of
  /// the frozen previous level, so parallelism changes only wall-clock
  /// time (see DESIGN.md "Parallel discovery").
  int num_threads = 1;

  /// Soft deadline on the traversal in milliseconds; 0 = none. Checked at
  /// level boundaries only (a level is never abandoned halfway), so the
  /// result is always every minimal FD with an LHS up to the last completed
  /// level — a sound under-approximation, flagged via
  /// DiscoveryOutcome::truncated. Time is read from the FaultRegistry's
  /// virtual clock, so latency fault plans can exercise truncation
  /// deterministically.
  double deadline_ms = 0.0;

  /// Memory budget charged for every stripped partition and partition
  /// product of the traversal; null = ungoverned (today's behavior,
  /// bit-identical output). Crossing the budget's soft limit evicts
  /// recomputable partitions (LRU, recompute-on-miss); hitting the hard
  /// limit stops lattice growth at a level boundary and flags
  /// DiscoveryOutcome::memory_truncated — the memory analogue of the
  /// deadline above. The budget may be shared across passes (candidate
  /// generation charges both of its discoveries against one budget). Must
  /// outlive the call.
  MemoryBudget* memory_budget = nullptr;
};

/// \brief What DiscoverFdsDetailed produced, plus how far it got.
struct DiscoveryOutcome {
  FdSet fds;
  /// True iff the deadline cut the traversal short; `fds` then covers only
  /// LHS sizes up to `levels_completed`.
  bool truncated = false;
  /// True iff the memory budget's hard limit cut the traversal short; same
  /// partial-lattice contract as `truncated`.
  bool memory_truncated = false;
  /// Lattice levels fully processed (level k checks LHS candidates of
  /// size k).
  int levels_completed = 0;
  /// Peak bytes charged to the memory budget during this call (0 when no
  /// budget was supplied). Cumulative high-water if the budget is shared.
  size_t peak_memory_bytes = 0;
  /// Partitions evicted / rebuilt by the budget-governed store.
  size_t partitions_evicted = 0;
  size_t partitions_recomputed = 0;

  /// True iff the traversal was cut short for any reason.
  bool Truncated() const { return truncated || memory_truncated; }
};

/// \brief Discovers all minimal, non-trivial FDs (or AFDs) of `relation`.
///
/// Level-wise TANE (Huhtala et al. 1999): attribute-lattice traversal with
/// stripped-partition products, C+ right-hand-side candidate pruning, and
/// key pruning. This is the library's substitute for the Metanome profiler
/// used in the paper's experiments (§7.1).
///
/// FDs with an empty LHS (constant columns) are reported when applicable.
Result<FdSet> DiscoverFds(const Relation& relation,
                          const TaneOptions& options = {});

/// \brief DiscoverFds plus progress/truncation metadata.
///
/// Identical traversal; use this form when a deadline is set (or when the
/// caller wants to know how deep discovery went). Also fires the
/// "discovery.level" fault site once per level, so fault plans can inject
/// latency or failure into the traversal.
Result<DiscoveryOutcome> DiscoverFdsDetailed(const Relation& relation,
                                             const TaneOptions& options = {});

}  // namespace uguide

#endif  // UGUIDE_DISCOVERY_TANE_H_
