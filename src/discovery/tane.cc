#include "discovery/tane.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "discovery/partition.h"

namespace uguide {

namespace {

// A lattice node carries only its RHS-candidate set; partitions live in the
// budget-governed PartitionStore, keyed by the node's attribute set, so the
// store can evict and rebuild them without the traversal noticing.
struct Node {
  AttributeSet cplus;
};

using Level = std::unordered_map<AttributeSet, Node, AttributeSetHash>;

// Keeps only FDs that are minimal within the emitted set (same RHS, no
// strictly smaller LHS). Needed because approximate-mode pruning cannot
// guarantee minimality in every corner case.
//
// Complexity: FDs are bucketed by RHS, so the pairwise subset scan is
// O(sum_r n_r^2) where n_r is the count emitted for RHS r — worst case
// O(n^2) in the total emitted count, but the per-RHS buckets are small in
// practice (C+ pruning already suppresses almost all non-minimal
// emissions; this pass is noise in bench_discovery even on the widest
// 15-attribute relation). Each subset test is one mask comparison.
// Output preserves the emission order, which downstream question-selection
// heuristics observe through FdSet iteration.
FdSet FilterMinimal(const std::vector<Fd>& fds) {
  std::unordered_map<int, std::vector<const Fd*>> by_rhs;
  for (const Fd& fd : fds) by_rhs[fd.rhs].push_back(&fd);
  FdSet out;
  for (const Fd& fd : fds) {
    bool minimal = true;
    for (const Fd* other : by_rhs[fd.rhs]) {
      if (other->lhs.IsStrictSubsetOf(fd.lhs)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.Add(fd);
  }
  return out;
}

// One node's dependency check: compute C+(X) from the frozen previous
// level, emit the FDs X\{a} -> a that pass the error threshold, and prune
// this node's C+ accordingly. Pure function of (`x`, `node`, `prev`, the
// partitions behind `store`), so nodes of one level can be checked
// concurrently — each call writes only its own `node` and its own `found`
// list, and the store is internally synchronized.
void CheckNode(const AttributeSet& x, Node& node, const Level& prev,
               PartitionStore& store, const AttributeSet& all_attrs,
               const TaneOptions& options, std::vector<Fd>& found) {
  // C+(X) = intersection of C+(X \ {A}) over A in X.
  AttributeSet cplus = all_attrs;
  for (int a : x) {
    auto it = prev.find(x.Without(a));
    if (it == prev.end()) {
      // Subset was pruned (empty C+), so nothing can be a candidate here.
      // The node itself is erased at this level's prune step; the regression
      // test TaneTest.PrunedParentEmitsNothing pins that it emits no FDs in
      // the meantime (candidates below intersect to the empty set).
      cplus = AttributeSet();
      break;
    }
    cplus = cplus.Intersect(it->second.cplus);
  }
  node.cplus = cplus;

  AttributeSet candidates = x.Intersect(node.cplus);
  if (candidates.Empty()) return;
  const std::shared_ptr<const Partition> refined = store.Get(x);
  for (int a : candidates) {
    if (prev.find(x.Without(a)) == prev.end()) continue;
    const std::shared_ptr<const Partition> base = store.Get(x.Without(a));
    const double error = base->FdError(*refined);
    const bool exact = error == 0.0;
    const bool valid = error <= options.max_error;
    if (valid) {
      found.emplace_back(x.Without(a), a);
    }
    if (exact) {
      node.cplus.Remove(a);
      // Remove R \ X: no attribute outside X can be a minimal RHS for
      // any superset of X once X\{a} -> a holds exactly. (This step is
      // only sound for exact FDs -- the implication arguments behind it
      // break under g3 slack.)
      node.cplus = node.cplus.Intersect(x);
    } else if (valid && options.prune_on_approximate) {
      // An approximate FD prunes only its own RHS: supersets of the
      // LHS cannot yield a *minimal* AFD for `a` anymore, but other
      // RHS candidates stay live.
      node.cplus.Remove(a);
    }
  }
}

}  // namespace

Result<FdSet> DiscoverFds(const Relation& relation,
                          const TaneOptions& options) {
  UGUIDE_ASSIGN_OR_RETURN(DiscoveryOutcome outcome,
                          DiscoverFdsDetailed(relation, options));
  return std::move(outcome.fds);
}

Result<DiscoveryOutcome> DiscoverFdsDetailed(const Relation& relation,
                                             const TaneOptions& options) {
  if (options.max_error < 0.0 || options.max_error >= 1.0) {
    return Status::InvalidArgument("max_error must be in [0, 1)");
  }
  if (options.max_lhs_size < 0) {
    return Status::InvalidArgument("max_lhs_size must be non-negative");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be non-negative");
  }
  if (options.deadline_ms < 0.0) {
    return Status::InvalidArgument("deadline_ms must be non-negative");
  }
  const int m = relation.NumAttributes();
  const AttributeSet all_attrs = AttributeSet::Full(m);
  std::vector<Fd> emitted;

  DiscoveryOutcome outcome;
  MemoryBudget* budget = options.memory_budget;
  PartitionStore store(&relation, budget);
  const auto finish = [&](DiscoveryOutcome&& done) {
    done.fds = FilterMinimal(emitted);
    if (budget != nullptr) done.peak_memory_bytes = budget->high_water();
    done.partitions_evicted = store.evictions();
    done.partitions_recomputed = store.recomputes();
    return std::move(done);
  };
  if (m == 0 || relation.NumRows() == 0) return finish(std::move(outcome));

  FaultRegistry& registry = FaultRegistry::Global();
  const auto start = registry.Now();
  auto past_deadline = [&] {
    if (options.deadline_ms <= 0.0) return false;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(registry.Now() - start)
            .count();
    return elapsed_ms > options.deadline_ms;
  };

  // Shared worker pool for the whole traversal; with num_threads <= 1 this
  // spawns nothing and every ParallelFor below runs inline, serially.
  ThreadPool pool(options.num_threads);

  // Levels 0 and 1 are the recompute base for every eviction rebuild, so
  // they are pinned (never evicted) — but still charged: a hard limit too
  // small for even the column partitions truncates discovery at level 0,
  // the graceful floor of the degradation contract.
  Level prev;
  prev.emplace(AttributeSet(), Node{all_attrs});
  if (!store.Put(AttributeSet(), Partition::ForEmptySet(relation.NumRows()),
                 /*pinned=*/true)) {
    outcome.memory_truncated = true;
    return finish(std::move(outcome));
  }

  Level current;
  for (int a = 0; a < m; ++a) {
    if (!store.Put(AttributeSet::Single(a), Partition::ForColumn(relation, a),
                   /*pinned=*/true)) {
      outcome.memory_truncated = true;
      return finish(std::move(outcome));
    }
    current.emplace(AttributeSet::Single(a), Node{all_attrs});
  }

  for (int level_size = 1; level_size <= m && !current.empty();
       ++level_size) {
    // Graceful degradation: the deadline (and the fault site) is honored
    // only at level boundaries, so whatever is returned is every minimal FD
    // up to the last completed level -- never a half-checked level.
    UGUIDE_FAULT_POINT("discovery.level");
    if (past_deadline()) {
      outcome.truncated = true;
      break;
    }

    // --- Compute dependencies -------------------------------------------
    // Freeze-prev / shard-current: `prev` is read-only from here on, and
    // each node of `current` is checked independently against it. Shards
    // follow the level map's iteration order — fixed once the level is
    // built, and built identically for every thread count — and each
    // worker writes only its own node's C+ and its own FD list, merged in
    // shard order below. The emitted FD sequence is therefore bit-identical
    // to the serial traversal (and to the pre-parallel implementation,
    // which downstream question-selection heuristics are sensitive to).
    std::vector<Level::value_type*> nodes;
    nodes.reserve(current.size());
    for (auto& entry : current) nodes.push_back(&entry);
    const Level& frozen_prev = prev;
    std::vector<std::vector<Fd>> found(nodes.size());
    pool.ParallelFor(nodes.size(), [&](size_t i) {
      CheckNode(nodes[i]->first, nodes[i]->second, frozen_prev, store,
                all_attrs, options, found[i]);
    });
    for (const std::vector<Fd>& shard : found) {
      emitted.insert(emitted.end(), shard.begin(), shard.end());
    }
    outcome.levels_completed = level_size;

    // The previous level's partitions were last touched by the checks
    // above; drop them now (the old code held them through the product
    // phase, needlessly doubling the resident-level count). The pinned
    // recompute base (empty set, singletons) stays.
    for (const auto& [x, node] : prev) {
      if (x.Size() > 1) store.Erase(x);
    }

    // --- Prune -----------------------------------------------------------
    // Only C+-emptiness prunes nodes. TANE's classical key pruning
    // (deleting superkey nodes after a special output step) is NOT applied:
    // deleting a key node X also suppresses generation of supersets
    // Z = X + {...} that are needed to test minimal candidates
    // Z\{B} -> B with B inside the key, silently dropping minimal FDs on
    // key-heavy (e.g., small-sample) relations. C+ pruning alone keeps the
    // traversal sound and complete; superkey partitions are empty, so the
    // retained nodes cost little.
    std::vector<AttributeSet> to_delete;
    for (auto& [x, node] : current) {
      if (node.cplus.Empty()) to_delete.push_back(x);
    }
    for (const AttributeSet& x : to_delete) {
      current.erase(x);
      // A pruned node can never co-generate a candidate (downward closure
      // consults `current`), so its partition is dead too.
      if (x.Size() > 1) store.Erase(x);
    }

    if (level_size >= options.max_lhs_size + 1) break;

    // --- Generate the next level ----------------------------------------
    // Candidate enumeration is cheap and stays serial; the partition
    // products (the expensive part) run in parallel. Each Z is generated
    // exactly once — from its prefix X = Z \ {Z.Highest()} — so the
    // candidate list needs no dedup, and Product() is a pure const
    // function of two frozen partitions, so products are independent.
    // Inserting into `next` in enumeration order reproduces the serial
    // map's insertion sequence, keeping level iteration order (and hence
    // the emission order above) independent of the thread count.
    struct Candidate {
      AttributeSet z;
      AttributeSet left;   // the generator X = Z \ {a}
      AttributeSet right;  // a co-generator Z \ {b}, b != a
    };
    std::vector<Candidate> cands;
    for (const auto& [x, node] : current) {
      const int highest = x.Highest();
      for (int a = highest + 1; a < m; ++a) {
        AttributeSet z = x.With(a);
        // Downward closure: every |Z|-1 subset must have survived.
        bool all_present = true;
        AttributeSet other;
        bool have_other = false;
        for (int b : z) {
          auto it = current.find(z.Without(b));
          if (it == current.end()) {
            all_present = false;
            break;
          }
          if (b != a) {  // any co-generator works
            other = z.Without(b);
            have_other = true;
          }
        }
        if (!all_present || !have_other) continue;
        cands.push_back({z, x, other});
      }
    }

    // Products are computed in bounded batches when a budget governs the
    // run: only the current batch's operands are pinned, so partitions
    // outside it stay evictable and the working set is capped at
    // (admitted-under-soft-limit + one batch). Ungoverned runs use a
    // single batch — no extra barriers, identical to the pre-budget code.
    const size_t batch_size =
        budget != nullptr ? size_t{64} : std::max<size_t>(cands.size(), 1);
    Level next;
    bool exhausted = false;
    std::vector<AttributeSet> admitted;
    admitted.reserve(cands.size());
    for (size_t begin = 0; begin < cands.size() && !exhausted;
         begin += batch_size) {
      const size_t end = std::min(begin + batch_size, cands.size());
      // Pin the batch operands (rebuilding any evicted ones), serially.
      std::vector<std::pair<std::shared_ptr<const Partition>,
                            std::shared_ptr<const Partition>>>
          operands(end - begin);
      for (size_t i = begin; i < end; ++i) {
        operands[i - begin] = {store.Get(cands[i].left),
                               store.Get(cands[i].right)};
      }
      std::vector<std::optional<Partition>> products(end - begin);
      pool.ParallelFor(end - begin, [&](size_t i) {
        products[i] =
            operands[i].first->Product(*operands[i].second);
      });
      operands.clear();  // unpin before admission so eviction can help
      for (size_t i = begin; i < end; ++i) {
        if (!store.Put(cands[i].z, std::move(*products[i - begin]))) {
          exhausted = true;
          break;
        }
        admitted.push_back(cands[i].z);
        next.emplace(cands[i].z, Node{AttributeSet()});
      }
      store.EvictToSoftLimit();
    }
    if (exhausted) {
      // Hard limit: abandon the half-built level so the result is exactly
      // the lattice through `levels_completed` — the same contract as the
      // deadline, discovered and consumed identically downstream.
      for (const AttributeSet& z : admitted) store.Erase(z);
      outcome.memory_truncated = true;
      break;
    }
    prev = std::move(current);
    current = std::move(next);
  }

  return finish(std::move(outcome));
}

}  // namespace uguide
