#include "discovery/tane.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "discovery/partition.h"

namespace uguide {

namespace {

struct Node {
  Partition partition;
  AttributeSet cplus;
};

using Level = std::unordered_map<AttributeSet, Node, AttributeSetHash>;

// Keeps only FDs that are minimal within the emitted set (same RHS, no
// strictly smaller LHS). Needed because approximate-mode pruning cannot
// guarantee minimality in every corner case.
FdSet FilterMinimal(const std::vector<Fd>& fds) {
  FdSet out;
  for (const Fd& fd : fds) {
    bool minimal = true;
    for (const Fd& other : fds) {
      if (other.rhs == fd.rhs && other.lhs.IsStrictSubsetOf(fd.lhs)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.Add(fd);
  }
  return out;
}

}  // namespace

Result<FdSet> DiscoverFds(const Relation& relation,
                          const TaneOptions& options) {
  if (options.max_error < 0.0 || options.max_error >= 1.0) {
    return Status::InvalidArgument("max_error must be in [0, 1)");
  }
  if (options.max_lhs_size < 0) {
    return Status::InvalidArgument("max_lhs_size must be non-negative");
  }
  const int m = relation.NumAttributes();
  const AttributeSet all_attrs = AttributeSet::Full(m);
  std::vector<Fd> emitted;

  if (m == 0 || relation.NumRows() == 0) return FdSet();

  // Level 0: the empty attribute set. Its partition has one class.
  Level prev;
  prev.emplace(AttributeSet(),
               Node{Partition::ForEmptySet(relation.NumRows()), all_attrs});

  // Level 1: singletons.
  Level current;
  for (int a = 0; a < m; ++a) {
    current.emplace(AttributeSet::Single(a),
                    Node{Partition::ForColumn(relation, a), all_attrs});
  }

  for (int level_size = 1; level_size <= m && !current.empty();
       ++level_size) {
    // --- Compute dependencies -------------------------------------------
    for (auto& [x, node] : current) {
      // C+(X) = intersection of C+(X \ {A}) over A in X.
      AttributeSet cplus = all_attrs;
      for (int a : x) {
        auto it = prev.find(x.Without(a));
        if (it == prev.end()) {
          // Subset was pruned; inherit the tightest information we have:
          // a pruned subset had empty C+ (or was a key, handled below), so
          // nothing can be a candidate here.
          cplus = AttributeSet();
          break;
        }
        cplus = cplus.Intersect(it->second.cplus);
      }
      node.cplus = cplus;

      AttributeSet candidates = x.Intersect(node.cplus);
      for (int a : candidates) {
        auto it = prev.find(x.Without(a));
        if (it == prev.end()) continue;
        const double error = it->second.partition.FdError(node.partition);
        const bool exact = error == 0.0;
        const bool valid = error <= options.max_error;
        if (valid) {
          emitted.emplace_back(x.Without(a), a);
        }
        if (exact) {
          node.cplus.Remove(a);
          // Remove R \ X: no attribute outside X can be a minimal RHS for
          // any superset of X once X\{a} -> a holds exactly. (This step is
          // only sound for exact FDs -- the implication arguments behind it
          // break under g3 slack.)
          node.cplus = node.cplus.Intersect(x);
        } else if (valid && options.prune_on_approximate) {
          // An approximate FD prunes only its own RHS: supersets of the
          // LHS cannot yield a *minimal* AFD for `a` anymore, but other
          // RHS candidates stay live.
          node.cplus.Remove(a);
        }
      }
    }

    // --- Prune -----------------------------------------------------------
    // Only C+-emptiness prunes nodes. TANE's classical key pruning
    // (deleting superkey nodes after a special output step) is NOT applied:
    // deleting a key node X also suppresses generation of supersets
    // Z = X + {...} that are needed to test minimal candidates
    // Z\{B} -> B with B inside the key, silently dropping minimal FDs on
    // key-heavy (e.g., small-sample) relations. C+ pruning alone keeps the
    // traversal sound and complete; superkey partitions are empty, so the
    // retained nodes cost little.
    std::vector<AttributeSet> to_delete;
    for (auto& [x, node] : current) {
      if (node.cplus.Empty()) to_delete.push_back(x);
    }
    for (const AttributeSet& x : to_delete) current.erase(x);

    if (level_size >= options.max_lhs_size + 1) break;

    // --- Generate the next level ----------------------------------------
    Level next;
    for (const auto& [x, node] : current) {
      const int highest = x.Highest();
      for (int a = highest + 1; a < m; ++a) {
        AttributeSet z = x.With(a);
        // Downward closure: every |Z|-1 subset must have survived.
        bool all_present = true;
        const Node* other = nullptr;
        for (int b : z) {
          auto it = current.find(z.Without(b));
          if (it == current.end()) {
            all_present = false;
            break;
          }
          if (b != a) other = &it->second;  // any co-generator works
        }
        if (!all_present || other == nullptr) continue;
        next.emplace(z, Node{node.partition.Product(other->partition),
                             AttributeSet()});
      }
    }
    prev = std::move(current);
    current = std::move(next);
  }

  return FilterMinimal(emitted);
}

}  // namespace uguide
