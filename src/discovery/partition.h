#ifndef UGUIDE_DISCOVERY_PARTITION_H_
#define UGUIDE_DISCOVERY_PARTITION_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/attribute_set.h"
#include "common/memory_budget.h"
#include "common/span.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// \brief A stripped partition (position-list index) over an attribute set.
///
/// Tuples are grouped into equivalence classes by their projection onto the
/// attribute set; classes of size one are stripped (TANE convention), so an
/// empty class list means the attribute set is a key. Partitions support the
/// linear-time product used by level-wise FD discovery and the g3
/// approximation error of Kivinen & Mannila used throughout the paper.
///
/// Storage is CSR (compressed sparse row): one contiguous element array
/// holding every stripped tuple id, class by class, plus an offset array
/// with NumClasses() + 1 entries. Classes appear in ascending order of
/// their first (smallest) member and list members ascending — the same
/// deterministic order the nested-vector layout produced — so every
/// consumer (products, g3 scans, the violation engine's class walks) sees
/// byte-identical sequences while touching two flat arrays instead of a
/// pointer per class (DESIGN.md §14).
///
/// Thread safety: a Partition is immutable after construction, and every
/// const member (Product, FdError, KeyError, accessors) touches only local
/// state — concurrent calls on shared Partition objects are safe. Parallel
/// TANE relies on this (see DESIGN.md "Parallel discovery").
class Partition {
 public:
  /// One equivalence class: a view into the flat element array.
  using ClassView = ConstSpan<TupleId>;

  /// The partition where every tuple is in one class (projection onto the
  /// empty attribute set).
  static Partition ForEmptySet(TupleId num_rows);

  /// Builds the partition of a single column.
  static Partition ForColumn(const Relation& relation, int col);

  /// Builds the partition of an arbitrary attribute set via products.
  /// Prefer PartitionCache when computing many related partitions.
  static Partition ForAttributes(const Relation& relation,
                                 const AttributeSet& attrs);

  /// Wraps an externally assembled CSR (flat element array + offsets) as a
  /// partition. The live-mutation layer patches column partitions in O(Δ)
  /// and emits the result here; the private constructor's invariants
  /// (offsets bracket elems, every class >= 2, front offset 0) still apply,
  /// so a malformed splice trips the same checks a bad build would.
  static Partition FromCsr(TupleId num_rows, std::vector<TupleId> elems,
                           std::vector<uint32_t> offsets) {
    return Partition(num_rows, std::move(elems), std::move(offsets));
  }

  /// The product (refinement) of two partitions: classes are intersections.
  /// Linear in the stripped sizes (TANE, Alg. PRODUCT); one probe-table
  /// pass per class of `other`, no per-class allocations.
  Partition Product(const Partition& other) const;

  /// Number of stripped (size >= 2) classes.
  size_t NumClasses() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Total number of tuples across stripped classes (the ||pi|| of TANE).
  size_t StrippedSize() const { return elems_.size(); }

  TupleId NumRows() const { return num_rows_; }

  /// True iff every class is a singleton, i.e., the attribute set is a key.
  bool IsKey() const { return NumClasses() == 0; }

  /// The i-th stripped class (members ascending).
  ClassView Class(size_t i) const {
    UGUIDE_DCHECK(i + 1 < offsets_.size());
    return ClassView(elems_.data() + offsets_[i],
                     offsets_[i + 1] - offsets_[i]);
  }

  /// The flat element array (class by class) and its offsets; exposed for
  /// tests and tooling that validate the CSR invariants.
  ConstSpan<TupleId> elements() const {
    return ConstSpan<TupleId>(elems_.data(), elems_.size());
  }
  ConstSpan<uint32_t> offsets() const {
    return ConstSpan<uint32_t>(offsets_.data(), offsets_.size());
  }

  /// The g3 error of the FD X -> A given pi_X (this) and pi_{X+A}
  /// (`refined`): the fraction of tuples that must be removed for the FD to
  /// hold exactly. Both partitions must be over the same relation.
  double FdError(const Partition& refined) const;

  /// The key error e(X) = (||pi|| - |pi|) / n: fraction of tuples to remove
  /// to make the attribute set a key.
  double KeyError() const;

  /// Approximate heap footprint in bytes, fixed at construction: the CSR
  /// element payload plus the offset array (sizes, not capacities), plus
  /// the object header. Deliberately size-based so the figure is identical
  /// for mathematically equal partitions regardless of how they were
  /// produced — memory-budget truncation decisions must not depend on
  /// allocator growth policy. The constant differs from the nested-vector
  /// layout's (a 4-byte offset replaces a 24-byte vector header per class;
  /// see DESIGN.md §14) but is equally deterministic.
  size_t ApproxBytes() const { return approx_bytes_; }

 private:
  Partition(TupleId num_rows, std::vector<TupleId> elems,
            std::vector<uint32_t> offsets);

  TupleId num_rows_ = 0;
  size_t approx_bytes_ = 0;
  /// Stripped tuple ids, class by class; members ascending within a class.
  std::vector<TupleId> elems_;
  /// Class i spans elems_[offsets_[i], offsets_[i+1]). NumClasses() + 1
  /// entries (a single 0 for an empty partition), first entry 0.
  std::vector<uint32_t> offsets_;
};

/// \brief Memoizing provider of partitions for one relation.
///
/// Caches every requested attribute-set partition; composite sets are built
/// by recursive products. Also answers g3 error queries for arbitrary FDs,
/// which is the workhorse of candidate-FD relaxation (§3.1).
///
/// NOT thread-safe: Get() mutates the cache. Use one PartitionCache per
/// thread, or the shared immutable Partition API above, when parallelizing.
class PartitionCache {
 public:
  explicit PartitionCache(const Relation* relation);

  /// The (cached) partition of `attrs`.
  const Partition& Get(const AttributeSet& attrs);

  /// g3 error of `fd` on the relation.
  double FdError(const Fd& fd);

  /// Number of partitions currently cached (observability/testing).
  size_t CacheSize() const { return cache_.size(); }

 private:
  const Relation* relation_;
  std::unordered_map<AttributeSet, Partition, AttributeSetHash> cache_;
};

/// \brief Budget-governed, thread-safe partition store with LRU eviction
/// and recompute-on-miss.
///
/// The resource-governance substrate of FD discovery (DESIGN.md §8): every
/// admitted partition is charged against a shared MemoryBudget, and when
/// the soft limit is exceeded the least-recently-used *unpinned* entries
/// are evicted — they are recomputable from the relation, so eviction
/// trades recompute time for memory instead of failing. A later Get of an
/// evicted set transparently rebuilds it from column partitions.
///
/// Ownership is by shared_ptr: Get pins the partition for the caller, so
/// eviction can never dangle a reference — an entry's bytes are released
/// when the last holder (store or caller) drops it. Entries inserted with
/// `pinned = true` (the empty set and the singleton columns, i.e. the
/// recompute base) are never evicted.
///
/// With a null budget the store is a plain memoizing cache: nothing is
/// charged and nothing is ever evicted, so governed and ungoverned
/// discovery traverse identical state.
class PartitionStore {
 public:
  /// `relation` must outlive the store; `budget` may be null (ungoverned).
  PartitionStore(const Relation* relation, MemoryBudget* budget);

  /// The partition of `attrs`, recomputing it if it was evicted (or never
  /// admitted). Never fails: a partition that no longer fits the budget is
  /// force-charged while alive and simply not re-admitted to the cache.
  std::shared_ptr<const Partition> Get(const AttributeSet& attrs);

  /// As Get(), but a missing partition is produced by `build` instead of
  /// Partition::ForAttributes. Callers with a cheaper recompute path (e.g.
  /// the violation engine, which composes from cached sub-partitions)
  /// inject it here; `build` runs outside the store lock and may itself
  /// call Get() on other attribute sets.
  std::shared_ptr<const Partition> Get(const AttributeSet& attrs,
                                       const std::function<Partition()>& build);

  /// Admits a freshly computed partition, charging its footprint. When the
  /// charge would cross the hard limit, unpinned LRU entries are evicted to
  /// make room; returns false (and drops `partition`) iff the hard limit
  /// cannot be respected even then — the caller's truncation signal.
  bool Put(const AttributeSet& attrs, Partition partition,
           bool pinned = false);

  /// Admits an externally accounted partition handle without charging the
  /// budget: the bytes stay owned by whoever created the handle (the live
  /// dataset shares one handle across epoch stores, so charging each store
  /// would double-count). No-op when `attrs` is already resident.
  void PutShared(const AttributeSet& attrs,
                 std::shared_ptr<const Partition> partition,
                 bool pinned = true);

  /// All resident entries (attribute set + handle), unspecified order. The
  /// live dataset harvests surviving partitions from an outgoing epoch's
  /// engine through this to seed the next epoch.
  std::vector<std::pair<AttributeSet, std::shared_ptr<const Partition>>>
  Snapshot() const;

  /// Advances the store to data version `version`: entries whose attribute
  /// set intersects `dirty` are patched in place (singleton sets, via
  /// `patch(col)`) or dropped (composite sets — a dirty input invalidates
  /// the product; the empty set — its row census may have changed), and
  /// every clean entry is kept verbatim. `patch` runs under the store lock
  /// and must return the canonical partition of the mutated column.
  void AdvanceTo(uint64_t version, const AttributeSet& dirty,
                 const std::function<std::shared_ptr<const Partition>(int)>&
                     patch);

  /// Data version last passed to AdvanceTo (0 for a never-advanced store).
  uint64_t version() const;

  /// Drops the entry for `attrs` if present, pinned or not (levels that
  /// fall out of the TANE traversal release their memory here). Bytes are
  /// released once the last outstanding Get handle dies.
  void Erase(const AttributeSet& attrs);

  /// Evicts unpinned LRU entries until the budget's soft limit is met or
  /// nothing evictable remains. Called between traversal phases, when
  /// transient pins have been dropped.
  void EvictToSoftLimit();

  /// Entries currently resident (pinned + unpinned).
  size_t Size() const;
  /// Entries evicted by budget pressure since construction.
  size_t evictions() const;
  /// Get() calls that had to rebuild an absent/evicted partition.
  size_t recomputes() const;

 private:
  struct Entry {
    std::shared_ptr<const Partition> partition;
    bool pinned = false;
    /// Position in lru_ (unpinned entries only).
    std::list<AttributeSet>::iterator lru_pos;
  };

  /// Wraps `partition` in a shared_ptr whose deleter releases the charge.
  std::shared_ptr<const Partition> Account(Partition partition) const;
  /// Evicts LRU entries (unpinned, not externally held) until `fits()`
  /// returns true or no victim remains. Caller holds mu_.
  template <typename Fits>
  bool EvictUntilLocked(const Fits& fits);

  const Relation* relation_;
  MemoryBudget* budget_;
  mutable std::mutex mu_;
  std::unordered_map<AttributeSet, Entry, AttributeSetHash> entries_;
  /// Front = most recently used. Unpinned entries only.
  std::list<AttributeSet> lru_;
  size_t evictions_ = 0;
  size_t recomputes_ = 0;
  uint64_t version_ = 0;
};

}  // namespace uguide

#endif  // UGUIDE_DISCOVERY_PARTITION_H_
