#ifndef UGUIDE_DISCOVERY_PARTITION_H_
#define UGUIDE_DISCOVERY_PARTITION_H_

#include <unordered_map>
#include <vector>

#include "common/attribute_set.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// \brief A stripped partition (position-list index) over an attribute set.
///
/// Tuples are grouped into equivalence classes by their projection onto the
/// attribute set; classes of size one are stripped (TANE convention), so an
/// empty class list means the attribute set is a key. Partitions support the
/// linear-time product used by level-wise FD discovery and the g3
/// approximation error of Kivinen & Mannila used throughout the paper.
///
/// Thread safety: a Partition is immutable after construction, and every
/// const member (Product, FdError, KeyError, accessors) touches only local
/// state — concurrent calls on shared Partition objects are safe. Parallel
/// TANE relies on this (see DESIGN.md "Parallel discovery").
class Partition {
 public:
  /// The partition where every tuple is in one class (projection onto the
  /// empty attribute set).
  static Partition ForEmptySet(TupleId num_rows);

  /// Builds the partition of a single column.
  static Partition ForColumn(const Relation& relation, int col);

  /// Builds the partition of an arbitrary attribute set via products.
  /// Prefer PartitionCache when computing many related partitions.
  static Partition ForAttributes(const Relation& relation,
                                 const AttributeSet& attrs);

  /// The product (refinement) of two partitions: classes are intersections.
  /// Linear in the stripped sizes (TANE, Alg. PRODUCT).
  Partition Product(const Partition& other) const;

  /// Number of stripped (size >= 2) classes.
  size_t NumClasses() const { return classes_.size(); }

  /// Total number of tuples across stripped classes (the ||pi|| of TANE).
  size_t StrippedSize() const { return stripped_size_; }

  TupleId NumRows() const { return num_rows_; }

  /// True iff every class is a singleton, i.e., the attribute set is a key.
  bool IsKey() const { return classes_.empty(); }

  const std::vector<std::vector<TupleId>>& classes() const { return classes_; }

  /// The g3 error of the FD X -> A given pi_X (this) and pi_{X+A}
  /// (`refined`): the fraction of tuples that must be removed for the FD to
  /// hold exactly. Both partitions must be over the same relation.
  double FdError(const Partition& refined) const;

  /// The key error e(X) = (||pi|| - |pi|) / n: fraction of tuples to remove
  /// to make the attribute set a key.
  double KeyError() const;

 private:
  Partition(TupleId num_rows, std::vector<std::vector<TupleId>> classes);

  TupleId num_rows_ = 0;
  size_t stripped_size_ = 0;
  std::vector<std::vector<TupleId>> classes_;
};

/// \brief Memoizing provider of partitions for one relation.
///
/// Caches every requested attribute-set partition; composite sets are built
/// by recursive products. Also answers g3 error queries for arbitrary FDs,
/// which is the workhorse of candidate-FD relaxation (§3.1).
///
/// NOT thread-safe: Get() mutates the cache. Use one PartitionCache per
/// thread, or the shared immutable Partition API above, when parallelizing.
class PartitionCache {
 public:
  explicit PartitionCache(const Relation* relation);

  /// The (cached) partition of `attrs`.
  const Partition& Get(const AttributeSet& attrs);

  /// g3 error of `fd` on the relation.
  double FdError(const Fd& fd);

  /// Number of partitions currently cached (observability/testing).
  size_t CacheSize() const { return cache_.size(); }

 private:
  const Relation* relation_;
  std::unordered_map<AttributeSet, Partition, AttributeSetHash> cache_;
};

}  // namespace uguide

#endif  // UGUIDE_DISCOVERY_PARTITION_H_
