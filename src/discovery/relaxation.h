#ifndef UGUIDE_DISCOVERY_RELAXATION_H_
#define UGUIDE_DISCOVERY_RELAXATION_H_

#include "common/result.h"
#include "discovery/partition.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// Options controlling candidate-FD relaxation (§3.1 of the paper).
struct RelaxationOptions {
  /// Maximum g3 error tolerated by a relaxed FD (the paper's "violated by
  /// more than a fixed threshold", default 10% of tuples).
  double max_error = 0.10;

  /// If true (default), only the maximally relaxed FDs are returned: an FD
  /// is kept when no further single-attribute LHS removal stays within
  /// max_error. If false, every intermediate relaxation is also returned.
  bool minimal_only = true;
};

/// \brief Relaxes exact FDs discovered on a dirty table into candidate AFDs.
///
/// For each FD X -> A in `exact_fds`, walks the subset lattice of X downward
/// (removing one attribute at a time) as long as the g3 error on `relation`
/// stays within `options.max_error`, and collects the frontier. By the
/// paper's §3.1 argument, every true FD of the clean table is either in the
/// exact set or reachable by such a relaxation, so the returned candidate
/// set is a superset of the detectable part of Sigma_TC (given a suitable
/// threshold).
///
/// The result is deduplicated and, when minimal_only, minimized (no
/// candidate's LHS is a strict subset of another's with the same RHS).
Result<FdSet> RelaxFds(const Relation& relation, const FdSet& exact_fds,
                       const RelaxationOptions& options = {});

}  // namespace uguide

#endif  // UGUIDE_DISCOVERY_RELAXATION_H_
