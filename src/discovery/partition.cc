#include "discovery/partition.h"

#include <algorithm>

namespace uguide {

Partition::Partition(TupleId num_rows,
                     std::vector<std::vector<TupleId>> classes)
    : num_rows_(num_rows), classes_(std::move(classes)) {
  for (const auto& cls : classes_) {
    UGUIDE_DCHECK(cls.size() >= 2);
    stripped_size_ += cls.size();
  }
  approx_bytes_ = sizeof(Partition) +
                  classes_.size() * sizeof(std::vector<TupleId>) +
                  stripped_size_ * sizeof(TupleId);
}

Partition Partition::ForEmptySet(TupleId num_rows) {
  std::vector<std::vector<TupleId>> classes;
  if (num_rows >= 2) {
    std::vector<TupleId> all(static_cast<size_t>(num_rows));
    for (TupleId t = 0; t < num_rows; ++t) all[static_cast<size_t>(t)] = t;
    classes.push_back(std::move(all));
  }
  return Partition(num_rows, std::move(classes));
}

Partition Partition::ForColumn(const Relation& relation, int col) {
  const std::vector<ValueCode>& codes = relation.ColumnCodes(col);
  const TupleId n = relation.NumRows();
  // Group by dictionary code. Codes are dense, so a direct-address table
  // works: bucket index per code.
  std::unordered_map<ValueCode, std::vector<TupleId>> buckets;
  buckets.reserve(static_cast<size_t>(n));
  for (TupleId t = 0; t < n; ++t) {
    buckets[codes[static_cast<size_t>(t)]].push_back(t);
  }
  std::vector<std::vector<TupleId>> classes;
  classes.reserve(buckets.size());
  for (auto& [code, cls] : buckets) {
    if (cls.size() >= 2) classes.push_back(std::move(cls));
  }
  // Deterministic order (hash map iteration order is unspecified).
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return Partition(n, std::move(classes));
}

Partition Partition::ForAttributes(const Relation& relation,
                                   const AttributeSet& attrs) {
  if (attrs.Empty()) return ForEmptySet(relation.NumRows());
  std::vector<int> cols = attrs.ToVector();
  Partition result = ForColumn(relation, cols[0]);
  for (size_t i = 1; i < cols.size(); ++i) {
    result = result.Product(ForColumn(relation, cols[i]));
  }
  return result;
}

Partition Partition::Product(const Partition& other) const {
  UGUIDE_CHECK_EQ(num_rows_, other.num_rows_);
  // TANE's linear product: label tuples with their class index in `this`,
  // then split each class of `other` by that label.
  std::vector<int32_t> label(static_cast<size_t>(num_rows_), -1);
  for (size_t i = 0; i < classes_.size(); ++i) {
    for (TupleId t : classes_[i]) {
      label[static_cast<size_t>(t)] = static_cast<int32_t>(i);
    }
  }
  std::vector<std::vector<TupleId>> scratch(classes_.size());
  std::vector<std::vector<TupleId>> result;
  for (const auto& cls : other.classes_) {
    // Collect per-label members of this class.
    std::vector<int32_t> touched;
    for (TupleId t : cls) {
      int32_t l = label[static_cast<size_t>(t)];
      if (l < 0) continue;
      if (scratch[static_cast<size_t>(l)].empty()) touched.push_back(l);
      scratch[static_cast<size_t>(l)].push_back(t);
    }
    for (int32_t l : touched) {
      auto& group = scratch[static_cast<size_t>(l)];
      if (group.size() >= 2) result.push_back(group);
      group.clear();
    }
  }
  return Partition(num_rows_, std::move(result));
}

double Partition::FdError(const Partition& refined) const {
  UGUIDE_CHECK_EQ(num_rows_, refined.num_rows_);
  if (num_rows_ == 0) return 0.0;
  // tmp[t] = size of t's class in the refined partition (0 for stripped
  // singletons, treated as 1 below).
  std::vector<int32_t> tmp(static_cast<size_t>(num_rows_), 0);
  for (const auto& cls : refined.classes_) {
    for (TupleId t : cls) {
      tmp[static_cast<size_t>(t)] = static_cast<int32_t>(cls.size());
    }
  }
  size_t removed = 0;
  for (const auto& cls : classes_) {
    int32_t max_subclass = 1;
    for (TupleId t : cls) {
      max_subclass = std::max(max_subclass, tmp[static_cast<size_t>(t)]);
    }
    removed += cls.size() - static_cast<size_t>(max_subclass);
  }
  return static_cast<double>(removed) / static_cast<double>(num_rows_);
}

double Partition::KeyError() const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(stripped_size_ - classes_.size()) /
         static_cast<double>(num_rows_);
}

PartitionCache::PartitionCache(const Relation* relation)
    : relation_(relation) {
  UGUIDE_CHECK(relation != nullptr);
}

const Partition& PartitionCache::Get(const AttributeSet& attrs) {
  auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second;
  Partition p = [&] {
    if (attrs.Empty()) return Partition::ForEmptySet(relation_->NumRows());
    if (attrs.Size() == 1) {
      return Partition::ForColumn(*relation_, attrs.Lowest());
    }
    // Split off the lowest attribute and recurse; memoization makes related
    // lookups (as produced by relaxation's subset walks) cheap.
    int low = attrs.Lowest();
    const Partition& rest = Get(attrs.Without(low));
    // Get() may rehash the cache; take the column partition afterwards.
    Partition col = Partition::ForColumn(*relation_, low);
    return rest.Product(col);
  }();
  auto [inserted, ok] = cache_.emplace(attrs, std::move(p));
  return inserted->second;
}

double PartitionCache::FdError(const Fd& fd) {
  UGUIDE_CHECK(fd.IsValidShape());
  // Note: Get() can rehash, so the lhs reference must not be held across
  // the second Get() call. Copy-free solution: look up in order and
  // re-fetch.
  Get(fd.lhs);
  Get(fd.lhs.With(fd.rhs));
  const Partition& lhs = cache_.at(fd.lhs);
  const Partition& both = cache_.at(fd.lhs.With(fd.rhs));
  return lhs.FdError(both);
}

PartitionStore::PartitionStore(const Relation* relation, MemoryBudget* budget)
    : relation_(relation), budget_(budget) {
  UGUIDE_CHECK(relation != nullptr);
}

std::shared_ptr<const Partition> PartitionStore::Account(
    Partition partition) const {
  // The caller has already charged ApproxBytes(); the deleter returns them
  // when the last holder (store entry or pinned Get handle) lets go, so
  // eviction can never under-release and an in-use partition stays
  // accounted for.
  if (budget_ == nullptr) {
    return std::make_shared<const Partition>(std::move(partition));
  }
  const size_t bytes = partition.ApproxBytes();
  MemoryBudget* budget = budget_;
  return std::shared_ptr<const Partition>(
      new Partition(std::move(partition)), [budget, bytes](const Partition* p) {
        budget->Release(bytes);
        delete p;
      });
}

template <typename Fits>
bool PartitionStore::EvictUntilLocked(const Fits& fits) {
  if (fits()) return true;
  // Walk the LRU list from cold to hot. Entries still held by a caller
  // (use_count > 1) are skipped: evicting them would free nothing until the
  // pin drops, so they cannot help this caller fit.
  auto victim = lru_.end();
  while (victim != lru_.begin()) {
    --victim;
    auto it = entries_.find(*victim);
    UGUIDE_DCHECK(it != entries_.end());
    if (it->second.partition.use_count() > 1) continue;
    entries_.erase(it);
    victim = lru_.erase(victim);
    ++evictions_;
    if (fits()) return true;
  }
  return fits();
}

std::shared_ptr<const Partition> PartitionStore::Get(
    const AttributeSet& attrs) {
  return Get(attrs,
             [&] { return Partition::ForAttributes(*relation_, attrs); });
}

std::shared_ptr<const Partition> PartitionStore::Get(
    const AttributeSet& attrs, const std::function<Partition()>& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(attrs);
    if (it != entries_.end()) {
      if (!it->second.pinned) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      }
      return it->second.partition;
    }
    ++recomputes_;
  }
  // Evicted (or never admitted): rebuild outside the lock — by default
  // products of column partitions, the same computation that produced it
  // originally. The rebuild is force-charged: the caller depends on it
  // existing, so the budget absorbs a transient overshoot rather than fail;
  // re-admission below restores the soft limit by evicting colder entries.
  Partition rebuilt = build();
  if (budget_ != nullptr) budget_->ForceCharge(rebuilt.ApproxBytes());
  std::shared_ptr<const Partition> handle = Account(std::move(rebuilt));

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(attrs);
  if (!inserted) return it->second.partition;  // lost a rebuild race
  it->second.partition = handle;
  lru_.push_front(attrs);
  it->second.lru_pos = lru_.begin();
  if (budget_ != nullptr && budget_->OverSoftLimit()) {
    EvictUntilLocked([&] { return !budget_->OverSoftLimit(); });
  }
  return handle;
}

bool PartitionStore::Put(const AttributeSet& attrs, Partition partition,
                         bool pinned) {
  const size_t bytes = partition.ApproxBytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(attrs) != 0) return true;  // already resident
  if (budget_ != nullptr &&
      !EvictUntilLocked([&] { return budget_->TryCharge(bytes); })) {
    return false;
  }
  auto [it, inserted] = entries_.try_emplace(attrs);
  UGUIDE_DCHECK(inserted);
  it->second.partition = Account(std::move(partition));
  it->second.pinned = pinned;
  if (!pinned) {
    lru_.push_front(attrs);
    it->second.lru_pos = lru_.begin();
  }
  if (budget_ != nullptr && budget_->OverSoftLimit()) {
    EvictUntilLocked([&] { return !budget_->OverSoftLimit(); });
  }
  return true;
}

void PartitionStore::Erase(const AttributeSet& attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(attrs);
  if (it == entries_.end()) return;
  if (!it->second.pinned) lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void PartitionStore::EvictToSoftLimit() {
  if (budget_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  EvictUntilLocked([&] { return !budget_->OverSoftLimit(); });
}

size_t PartitionStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PartitionStore::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t PartitionStore::recomputes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recomputes_;
}

}  // namespace uguide
