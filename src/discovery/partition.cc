#include "discovery/partition.h"

#include <algorithm>

namespace uguide {

Partition::Partition(TupleId num_rows,
                     std::vector<std::vector<TupleId>> classes)
    : num_rows_(num_rows), classes_(std::move(classes)) {
  for (const auto& cls : classes_) {
    UGUIDE_DCHECK(cls.size() >= 2);
    stripped_size_ += cls.size();
  }
}

Partition Partition::ForEmptySet(TupleId num_rows) {
  std::vector<std::vector<TupleId>> classes;
  if (num_rows >= 2) {
    std::vector<TupleId> all(static_cast<size_t>(num_rows));
    for (TupleId t = 0; t < num_rows; ++t) all[static_cast<size_t>(t)] = t;
    classes.push_back(std::move(all));
  }
  return Partition(num_rows, std::move(classes));
}

Partition Partition::ForColumn(const Relation& relation, int col) {
  const std::vector<ValueCode>& codes = relation.ColumnCodes(col);
  const TupleId n = relation.NumRows();
  // Group by dictionary code. Codes are dense, so a direct-address table
  // works: bucket index per code.
  std::unordered_map<ValueCode, std::vector<TupleId>> buckets;
  buckets.reserve(static_cast<size_t>(n));
  for (TupleId t = 0; t < n; ++t) {
    buckets[codes[static_cast<size_t>(t)]].push_back(t);
  }
  std::vector<std::vector<TupleId>> classes;
  classes.reserve(buckets.size());
  for (auto& [code, cls] : buckets) {
    if (cls.size() >= 2) classes.push_back(std::move(cls));
  }
  // Deterministic order (hash map iteration order is unspecified).
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return Partition(n, std::move(classes));
}

Partition Partition::ForAttributes(const Relation& relation,
                                   const AttributeSet& attrs) {
  if (attrs.Empty()) return ForEmptySet(relation.NumRows());
  std::vector<int> cols = attrs.ToVector();
  Partition result = ForColumn(relation, cols[0]);
  for (size_t i = 1; i < cols.size(); ++i) {
    result = result.Product(ForColumn(relation, cols[i]));
  }
  return result;
}

Partition Partition::Product(const Partition& other) const {
  UGUIDE_CHECK_EQ(num_rows_, other.num_rows_);
  // TANE's linear product: label tuples with their class index in `this`,
  // then split each class of `other` by that label.
  std::vector<int32_t> label(static_cast<size_t>(num_rows_), -1);
  for (size_t i = 0; i < classes_.size(); ++i) {
    for (TupleId t : classes_[i]) {
      label[static_cast<size_t>(t)] = static_cast<int32_t>(i);
    }
  }
  std::vector<std::vector<TupleId>> scratch(classes_.size());
  std::vector<std::vector<TupleId>> result;
  for (const auto& cls : other.classes_) {
    // Collect per-label members of this class.
    std::vector<int32_t> touched;
    for (TupleId t : cls) {
      int32_t l = label[static_cast<size_t>(t)];
      if (l < 0) continue;
      if (scratch[static_cast<size_t>(l)].empty()) touched.push_back(l);
      scratch[static_cast<size_t>(l)].push_back(t);
    }
    for (int32_t l : touched) {
      auto& group = scratch[static_cast<size_t>(l)];
      if (group.size() >= 2) result.push_back(group);
      group.clear();
    }
  }
  return Partition(num_rows_, std::move(result));
}

double Partition::FdError(const Partition& refined) const {
  UGUIDE_CHECK_EQ(num_rows_, refined.num_rows_);
  if (num_rows_ == 0) return 0.0;
  // tmp[t] = size of t's class in the refined partition (0 for stripped
  // singletons, treated as 1 below).
  std::vector<int32_t> tmp(static_cast<size_t>(num_rows_), 0);
  for (const auto& cls : refined.classes_) {
    for (TupleId t : cls) {
      tmp[static_cast<size_t>(t)] = static_cast<int32_t>(cls.size());
    }
  }
  size_t removed = 0;
  for (const auto& cls : classes_) {
    int32_t max_subclass = 1;
    for (TupleId t : cls) {
      max_subclass = std::max(max_subclass, tmp[static_cast<size_t>(t)]);
    }
    removed += cls.size() - static_cast<size_t>(max_subclass);
  }
  return static_cast<double>(removed) / static_cast<double>(num_rows_);
}

double Partition::KeyError() const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(stripped_size_ - classes_.size()) /
         static_cast<double>(num_rows_);
}

PartitionCache::PartitionCache(const Relation* relation)
    : relation_(relation) {
  UGUIDE_CHECK(relation != nullptr);
}

const Partition& PartitionCache::Get(const AttributeSet& attrs) {
  auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second;
  Partition p = [&] {
    if (attrs.Empty()) return Partition::ForEmptySet(relation_->NumRows());
    if (attrs.Size() == 1) {
      return Partition::ForColumn(*relation_, attrs.Lowest());
    }
    // Split off the lowest attribute and recurse; memoization makes related
    // lookups (as produced by relaxation's subset walks) cheap.
    int low = attrs.Lowest();
    const Partition& rest = Get(attrs.Without(low));
    // Get() may rehash the cache; take the column partition afterwards.
    Partition col = Partition::ForColumn(*relation_, low);
    return rest.Product(col);
  }();
  auto [inserted, ok] = cache_.emplace(attrs, std::move(p));
  return inserted->second;
}

double PartitionCache::FdError(const Fd& fd) {
  UGUIDE_CHECK(fd.IsValidShape());
  // Note: Get() can rehash, so the lhs reference must not be held across
  // the second Get() call. Copy-free solution: look up in order and
  // re-fetch.
  Get(fd.lhs);
  Get(fd.lhs.With(fd.rhs));
  const Partition& lhs = cache_.at(fd.lhs);
  const Partition& both = cache_.at(fd.lhs.With(fd.rhs));
  return lhs.FdError(both);
}

}  // namespace uguide
