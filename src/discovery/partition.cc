#include "discovery/partition.h"

#include <algorithm>

namespace uguide {

Partition::Partition(TupleId num_rows, std::vector<TupleId> elems,
                     std::vector<uint32_t> offsets)
    : num_rows_(num_rows),
      elems_(std::move(elems)),
      offsets_(std::move(offsets)) {
  if (offsets_.empty()) offsets_.push_back(0);
  UGUIDE_DCHECK(offsets_.front() == 0);
  UGUIDE_DCHECK(offsets_.back() == elems_.size());
#ifndef NDEBUG
  for (size_t i = 0; i + 1 < offsets_.size(); ++i) {
    UGUIDE_DCHECK(offsets_[i + 1] - offsets_[i] >= 2);
  }
#endif
  approx_bytes_ = sizeof(Partition) + offsets_.size() * sizeof(uint32_t) +
                  elems_.size() * sizeof(TupleId);
}

Partition Partition::ForEmptySet(TupleId num_rows) {
  std::vector<TupleId> elems;
  std::vector<uint32_t> offsets{0};
  if (num_rows >= 2) {
    elems.resize(static_cast<size_t>(num_rows));
    for (TupleId t = 0; t < num_rows; ++t) elems[static_cast<size_t>(t)] = t;
    offsets.push_back(static_cast<uint32_t>(num_rows));
  }
  return Partition(num_rows, std::move(elems), std::move(offsets));
}

Partition Partition::ForColumn(const Relation& relation, int col) {
  const std::vector<ValueCode>& codes = relation.ColumnCodes(col);
  const TupleId n = relation.NumRows();
  // Codes are dense pool-wide, so a direct-address table replaces hashing:
  // count occurrences per code, assign class ids to non-singleton codes in
  // first-seen order (== ascending first row, the deterministic class
  // order), then scatter rows into the flat element array.
  const size_t num_codes = relation.pool().Size();
  std::vector<int32_t> count(num_codes, 0);
  for (TupleId t = 0; t < n; ++t) {
    ++count[static_cast<size_t>(codes[static_cast<size_t>(t)])];
  }
  std::vector<int32_t> class_of_code(num_codes, -1);
  std::vector<uint32_t> offsets{0};
  uint32_t total = 0;
  for (TupleId t = 0; t < n; ++t) {
    const size_t c = static_cast<size_t>(codes[static_cast<size_t>(t)]);
    if (count[c] >= 2 && class_of_code[c] < 0) {
      class_of_code[c] = static_cast<int32_t>(offsets.size() - 1);
      total += static_cast<uint32_t>(count[c]);
      offsets.push_back(total);
    }
  }
  std::vector<TupleId> elems(total);
  // Per-class write cursor, initialized to each class's start offset.
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (TupleId t = 0; t < n; ++t) {
    const int32_t cls =
        class_of_code[static_cast<size_t>(codes[static_cast<size_t>(t)])];
    if (cls >= 0) elems[cursor[static_cast<size_t>(cls)]++] = t;
  }
  return Partition(n, std::move(elems), std::move(offsets));
}

Partition Partition::ForAttributes(const Relation& relation,
                                   const AttributeSet& attrs) {
  if (attrs.Empty()) return ForEmptySet(relation.NumRows());
  std::vector<int> cols = attrs.ToVector();
  Partition result = ForColumn(relation, cols[0]);
  for (size_t i = 1; i < cols.size(); ++i) {
    result = result.Product(ForColumn(relation, cols[i]));
  }
  return result;
}

Partition Partition::Product(const Partition& other) const {
  UGUIDE_CHECK_EQ(num_rows_, other.num_rows_);
  // TANE's linear product: label tuples with their class index in `this`,
  // then split each class of `other` by that label. Two passes per class of
  // `other` — count per touched label, then scatter straight into the
  // result's flat element array — so no per-class vectors are allocated.
  const size_t nc = NumClasses();
  std::vector<int32_t> label(static_cast<size_t>(num_rows_), -1);
  for (size_t i = 0; i < nc; ++i) {
    for (TupleId t : Class(i)) {
      label[static_cast<size_t>(t)] = static_cast<int32_t>(i);
    }
  }
  // Groups are emitted per other-class in first-touch label order with
  // members ascending — identical to the nested-vector layout's order.
  std::vector<int32_t> count(nc, 0);
  std::vector<uint32_t> pos(nc, 0);
  std::vector<int32_t> touched;
  touched.reserve(nc);
  constexpr uint32_t kSkip = static_cast<uint32_t>(-1);
  std::vector<TupleId> elems;
  elems.reserve(std::min(StrippedSize(), other.StrippedSize()));
  std::vector<uint32_t> offsets{0};
  for (size_t oc = 0; oc < other.NumClasses(); ++oc) {
    const ClassView cls = other.Class(oc);
    for (TupleId t : cls) {
      const int32_t l = label[static_cast<size_t>(t)];
      if (l < 0) continue;
      if (count[static_cast<size_t>(l)] == 0) touched.push_back(l);
      ++count[static_cast<size_t>(l)];
    }
    uint32_t base = offsets.back();
    for (int32_t l : touched) {
      const size_t li = static_cast<size_t>(l);
      if (count[li] >= 2) {
        pos[li] = base;
        base += static_cast<uint32_t>(count[li]);
        offsets.push_back(base);
      } else {
        pos[li] = kSkip;
      }
    }
    if (base > elems.size()) elems.resize(base);
    for (TupleId t : cls) {
      const int32_t l = label[static_cast<size_t>(t)];
      if (l < 0) continue;
      const size_t li = static_cast<size_t>(l);
      if (pos[li] == kSkip) continue;
      elems[pos[li]++] = t;
    }
    for (int32_t l : touched) count[static_cast<size_t>(l)] = 0;
    touched.clear();
  }
  return Partition(num_rows_, std::move(elems), std::move(offsets));
}

double Partition::FdError(const Partition& refined) const {
  UGUIDE_CHECK_EQ(num_rows_, refined.num_rows_);
  if (num_rows_ == 0) return 0.0;
  // tmp[t] = size of t's class in the refined partition (0 for stripped
  // singletons, treated as 1 below).
  std::vector<int32_t> tmp(static_cast<size_t>(num_rows_), 0);
  for (size_t i = 0; i < refined.NumClasses(); ++i) {
    const ClassView cls = refined.Class(i);
    for (TupleId t : cls) {
      tmp[static_cast<size_t>(t)] = static_cast<int32_t>(cls.size());
    }
  }
  size_t removed = 0;
  for (size_t i = 0; i < NumClasses(); ++i) {
    const ClassView cls = Class(i);
    int32_t max_subclass = 1;
    for (TupleId t : cls) {
      max_subclass = std::max(max_subclass, tmp[static_cast<size_t>(t)]);
    }
    removed += cls.size() - static_cast<size_t>(max_subclass);
  }
  return static_cast<double>(removed) / static_cast<double>(num_rows_);
}

double Partition::KeyError() const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(StrippedSize() - NumClasses()) /
         static_cast<double>(num_rows_);
}

PartitionCache::PartitionCache(const Relation* relation)
    : relation_(relation) {
  UGUIDE_CHECK(relation != nullptr);
}

const Partition& PartitionCache::Get(const AttributeSet& attrs) {
  auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second;
  Partition p = [&] {
    if (attrs.Empty()) return Partition::ForEmptySet(relation_->NumRows());
    if (attrs.Size() == 1) {
      return Partition::ForColumn(*relation_, attrs.Lowest());
    }
    // Split off the lowest attribute and recurse; memoization makes related
    // lookups (as produced by relaxation's subset walks) cheap.
    int low = attrs.Lowest();
    const Partition& rest = Get(attrs.Without(low));
    // Get() may rehash the cache; take the column partition afterwards.
    Partition col = Partition::ForColumn(*relation_, low);
    return rest.Product(col);
  }();
  auto [inserted, ok] = cache_.emplace(attrs, std::move(p));
  return inserted->second;
}

double PartitionCache::FdError(const Fd& fd) {
  UGUIDE_CHECK(fd.IsValidShape());
  // Note: Get() can rehash, so the lhs reference must not be held across
  // the second Get() call. Copy-free solution: look up in order and
  // re-fetch.
  Get(fd.lhs);
  Get(fd.lhs.With(fd.rhs));
  const Partition& lhs = cache_.at(fd.lhs);
  const Partition& both = cache_.at(fd.lhs.With(fd.rhs));
  return lhs.FdError(both);
}

PartitionStore::PartitionStore(const Relation* relation, MemoryBudget* budget)
    : relation_(relation), budget_(budget) {
  UGUIDE_CHECK(relation != nullptr);
}

std::shared_ptr<const Partition> PartitionStore::Account(
    Partition partition) const {
  // The caller has already charged ApproxBytes(); the deleter returns them
  // when the last holder (store entry or pinned Get handle) lets go, so
  // eviction can never under-release and an in-use partition stays
  // accounted for.
  if (budget_ == nullptr) {
    return std::make_shared<const Partition>(std::move(partition));
  }
  const size_t bytes = partition.ApproxBytes();
  MemoryBudget* budget = budget_;
  return std::shared_ptr<const Partition>(
      new Partition(std::move(partition)), [budget, bytes](const Partition* p) {
        budget->Release(bytes);
        delete p;
      });
}

template <typename Fits>
bool PartitionStore::EvictUntilLocked(const Fits& fits) {
  if (fits()) return true;
  // Walk the LRU list from cold to hot. Entries still held by a caller
  // (use_count > 1) are skipped: evicting them would free nothing until the
  // pin drops, so they cannot help this caller fit.
  auto victim = lru_.end();
  while (victim != lru_.begin()) {
    --victim;
    auto it = entries_.find(*victim);
    UGUIDE_DCHECK(it != entries_.end());
    if (it->second.partition.use_count() > 1) continue;
    entries_.erase(it);
    victim = lru_.erase(victim);
    ++evictions_;
    if (fits()) return true;
  }
  return fits();
}

std::shared_ptr<const Partition> PartitionStore::Get(
    const AttributeSet& attrs) {
  return Get(attrs,
             [&] { return Partition::ForAttributes(*relation_, attrs); });
}

std::shared_ptr<const Partition> PartitionStore::Get(
    const AttributeSet& attrs, const std::function<Partition()>& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(attrs);
    if (it != entries_.end()) {
      if (!it->second.pinned) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      }
      return it->second.partition;
    }
    ++recomputes_;
  }
  // Evicted (or never admitted): rebuild outside the lock — by default
  // products of column partitions, the same computation that produced it
  // originally. The rebuild is force-charged: the caller depends on it
  // existing, so the budget absorbs a transient overshoot rather than fail;
  // re-admission below restores the soft limit by evicting colder entries.
  Partition rebuilt = build();
  if (budget_ != nullptr) budget_->ForceCharge(rebuilt.ApproxBytes());
  std::shared_ptr<const Partition> handle = Account(std::move(rebuilt));

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(attrs);
  if (!inserted) return it->second.partition;  // lost a rebuild race
  it->second.partition = handle;
  lru_.push_front(attrs);
  it->second.lru_pos = lru_.begin();
  if (budget_ != nullptr && budget_->OverSoftLimit()) {
    EvictUntilLocked([&] { return !budget_->OverSoftLimit(); });
  }
  return handle;
}

bool PartitionStore::Put(const AttributeSet& attrs, Partition partition,
                         bool pinned) {
  const size_t bytes = partition.ApproxBytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(attrs) != 0) return true;  // already resident
  if (budget_ != nullptr &&
      !EvictUntilLocked([&] { return budget_->TryCharge(bytes); })) {
    return false;
  }
  auto [it, inserted] = entries_.try_emplace(attrs);
  UGUIDE_DCHECK(inserted);
  it->second.partition = Account(std::move(partition));
  it->second.pinned = pinned;
  if (!pinned) {
    lru_.push_front(attrs);
    it->second.lru_pos = lru_.begin();
  }
  if (budget_ != nullptr && budget_->OverSoftLimit()) {
    EvictUntilLocked([&] { return !budget_->OverSoftLimit(); });
  }
  return true;
}

void PartitionStore::PutShared(const AttributeSet& attrs,
                               std::shared_ptr<const Partition> partition,
                               bool pinned) {
  UGUIDE_CHECK(partition != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(attrs);
  if (!inserted) return;  // already resident
  it->second.partition = std::move(partition);
  it->second.pinned = pinned;
  if (!pinned) {
    lru_.push_front(attrs);
    it->second.lru_pos = lru_.begin();
  }
}

std::vector<std::pair<AttributeSet, std::shared_ptr<const Partition>>>
PartitionStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<AttributeSet, std::shared_ptr<const Partition>>> out;
  out.reserve(entries_.size());
  for (const auto& [attrs, entry] : entries_) {
    out.emplace_back(attrs, entry.partition);
  }
  return out;
}

void PartitionStore::AdvanceTo(
    uint64_t version, const AttributeSet& dirty,
    const std::function<std::shared_ptr<const Partition>(int)>& patch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Patch dirty singletons in place; composite sets touching the scope are
  // dropped (a dirty input invalidates the whole product), and so is the
  // empty set (appends change its single class). Clean entries survive
  // verbatim — safe because NumRows only changes on appends, which dirty
  // every attribute.
  std::vector<AttributeSet> stale;
  for (auto& [attrs, entry] : entries_) {
    if (attrs.Empty()) {
      if (!dirty.Empty()) stale.push_back(attrs);
      continue;
    }
    if (!attrs.Intersects(dirty)) continue;
    if (attrs.Size() == 1) {
      entry.partition = patch(attrs.Lowest());
      UGUIDE_CHECK(entry.partition != nullptr);
    } else {
      stale.push_back(attrs);
    }
  }
  for (const AttributeSet& attrs : stale) {
    auto it = entries_.find(attrs);
    if (!it->second.pinned) lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  version_ = version;
}

uint64_t PartitionStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

void PartitionStore::Erase(const AttributeSet& attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(attrs);
  if (it == entries_.end()) return;
  if (!it->second.pinned) lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void PartitionStore::EvictToSoftLimit() {
  if (budget_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  EvictUntilLocked([&] { return !budget_->OverSoftLimit(); });
}

size_t PartitionStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PartitionStore::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t PartitionStore::recomputes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recomputes_;
}

}  // namespace uguide
