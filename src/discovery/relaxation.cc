#include "discovery/relaxation.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace uguide {

Result<FdSet> RelaxFds(const Relation& relation, const FdSet& exact_fds,
                       const RelaxationOptions& options) {
  if (options.max_error < 0.0 || options.max_error >= 1.0) {
    return Status::InvalidArgument("max_error must be in [0, 1)");
  }
  PartitionCache cache(&relation);

  // Memoized threshold test; shared across all exact FDs so overlapping
  // subset walks are paid for once.
  std::unordered_map<Fd, bool, FdHash> verdict;
  auto passes = [&](const Fd& fd) {
    auto it = verdict.find(fd);
    if (it != verdict.end()) return it->second;
    bool ok = cache.FdError(fd) <= options.max_error;
    verdict.emplace(fd, ok);
    return ok;
  };

  std::vector<Fd> collected;
  std::unordered_set<Fd, FdHash> emitted;

  for (const Fd& fd : exact_fds) {
    // BFS down the subset lattice of fd.lhs over *passing* sets only.
    // g3 error can only grow as LHS attributes are removed, so the passing
    // region is upward-closed within the sublattice; its minimal elements
    // are the maximally relaxed candidates the paper's §3.1 asks for.
    std::vector<Fd> frontier = {fd};
    std::unordered_set<Fd, FdHash> enqueued = {fd};
    UGUIDE_DCHECK(passes(fd)) << "exact FD fails its own threshold";
    while (!frontier.empty()) {
      std::vector<Fd> next;
      for (const Fd& current : frontier) {
        bool relaxed_further = false;
        for (int a : current.lhs) {
          Fd child(current.lhs.Without(a), current.rhs);
          if (passes(child)) {
            relaxed_further = true;
            if (enqueued.insert(child).second) next.push_back(child);
          }
        }
        const bool keep = options.minimal_only ? !relaxed_further : true;
        if (keep && emitted.insert(current).second) {
          collected.push_back(current);
        }
      }
      frontier = std::move(next);
    }
  }

  if (!options.minimal_only) return FdSet(collected);

  // Cross-FD minimization: different exact FDs can relax into comparable
  // candidates; keep only the minimal ones. Bucketing by RHS (the same
  // scheme as TANE's FilterMinimal) reduces the pairwise subset scan from
  // all-pairs over the collected set to within-bucket pairs; candidates
  // with different RHS can never shadow each other. Output preserves the
  // collection order, which question-selection heuristics observe through
  // FdSet iteration.
  std::unordered_map<int, std::vector<const Fd*>> by_rhs;
  for (const Fd& fd : collected) by_rhs[fd.rhs].push_back(&fd);
  FdSet out;
  for (const Fd& fd : collected) {
    bool minimal = true;
    for (const Fd* other : by_rhs[fd.rhs]) {
      if (other->lhs.IsStrictSubsetOf(fd.lhs)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.Add(fd);
  }
  return out;
}

}  // namespace uguide
