#ifndef UGUIDE_VIOLATIONS_BIPARTITE_GRAPH_H_
#define UGUIDE_VIOLATIONS_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/span.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

class ThreadPool;
class ViolationEngine;

/// Index of an FD node in a ViolationGraph.
using FdId = int;
/// Index of a violation (cell) node in a ViolationGraph.
using CellId = int;

/// \brief The bipartite FD <-> violation graph of §3.2.
///
/// Left nodes are candidate FDs; right nodes are the cells they flag; an
/// edge connects an FD to every cell in its g3 removal set. The interactive
/// strategies deactivate nodes as the expert answers (an invalidated FD
/// disappears together with cells only it flagged), so both sides carry
/// active flags rather than being physically removed.
///
/// The adjacency is frozen CSR (DESIGN.md §14): both directions are stored
/// as one flat edge array plus an offset array, built once in the
/// deterministic Merge step and immutable afterwards — only the active
/// state mutates. Active flags live in uint64_t bitmap words so selection
/// scans iterate set bits branch-free (ForEachActiveFd/ForEachActiveCell),
/// and both per-cell and per-FD active degrees are maintained
/// incrementally, making every hot query of the strategy loops O(1).
/// Cell lookup uses an open-addressed linear-probe table rebuilt
/// right-sized after Merge, so the footprint reported by
/// ApproxMemoryBytes() is a pure function of the graph's content.
class ViolationGraph {
 public:
  /// Builds the graph for `candidates` over `relation`. FDs that flag no
  /// cell still get a node (with no edges) so FdIds align with the input
  /// set's order. Routes violation detection through a private
  /// partition-backed engine; prefer the engine overload to share the
  /// LHS-partition cache with the rest of a session.
  static ViolationGraph Build(const Relation& relation,
                              const FdSet& candidates);

  /// As above, detecting violations through `engine`. When `pool` drives
  /// more than one thread, per-FD violation sets are computed in parallel
  /// and merged in FD order, so cell ids, adjacency order, and the whole
  /// graph are bit-identical to the serial build at any thread count
  /// (freeze inputs / shard per FD / merge in order — the discipline of
  /// parallel discovery, DESIGN.md §6).
  static ViolationGraph Build(ViolationEngine& engine, const FdSet& candidates,
                              ThreadPool* pool = nullptr);

  /// The original hash-grouping build, retained as the behavioral
  /// reference for the equivalence suite and as the benchmark baseline.
  static ViolationGraph BuildReference(const Relation& relation,
                                       const FdSet& candidates);

  /// Assembles a graph directly from frozen per-FD violation-cell vectors
  /// (`per_fd[i]` belongs to `fds[i]`). This is the deterministic merge
  /// step every build path funnels through, exposed for the live-mutation
  /// layer: when an epoch recomputes cells only for FDs whose attributes a
  /// mutation touched (reusing the untouched FDs' vectors verbatim), the
  /// result is byte-identical to a fresh Build over the mutated relation.
  /// `per_fd` is read, not consumed — the live index calls this once per
  /// epoch against vectors it keeps across epochs, so copying them here
  /// would charge every batch O(total cells) for nothing.
  static ViolationGraph FromPerFdCells(
      std::vector<Fd> fds, const std::vector<std::vector<Cell>>& per_fd);

  /// As above with each FD's vector behind a shared handle — the
  /// copy-on-write layout LiveViolationIndex keeps across epochs, so a
  /// lazy epoch materialization reads the frozen handles without ever
  /// copying the untouched vectors.
  static ViolationGraph FromPerFdCells(
      std::vector<Fd> fds,
      const std::vector<std::shared_ptr<const std::vector<Cell>>>& per_fd);

  int NumFds() const { return static_cast<int>(fds_.size()); }
  int NumCells() const { return static_cast<int>(cells_.size()); }

  const Fd& fd(FdId f) const { return fds_[Checked(f, NumFds())]; }
  const Cell& cell(CellId c) const { return cells_[Checked(c, NumCells())]; }

  /// Cells flagged by an FD (edges from the left), in interning order.
  ConstSpan<CellId> CellsOfFd(FdId f) const {
    const size_t i = static_cast<size_t>(Checked(f, NumFds()));
    return ConstSpan<CellId>(fd_cell_edges_.data() + fd_cell_offsets_[i],
                             fd_cell_offsets_[i + 1] - fd_cell_offsets_[i]);
  }

  /// FDs flagging a cell (edges from the right), ascending.
  ConstSpan<FdId> FdsOfCell(CellId c) const {
    const size_t i = static_cast<size_t>(Checked(c, NumCells()));
    return ConstSpan<FdId>(cell_fd_edges_.data() + cell_fd_offsets_[i],
                           cell_fd_offsets_[i + 1] - cell_fd_offsets_[i]);
  }

  bool FdActive(FdId f) const {
    return TestBit(fd_active_words_, Checked(f, NumFds()));
  }
  bool CellActive(CellId c) const {
    return TestBit(cell_active_words_, Checked(c, NumCells()));
  }

  /// Number of *active* FDs flagging cell `c`. O(1): maintained
  /// incrementally as FDs are deactivated (the hot query of every
  /// cell-strategy selection scan).
  int ActiveDegreeOfCell(CellId c) const {
    return CellActive(c) ? cell_active_degree_[Checked(c, NumCells())] : 0;
  }

  /// Number of *active* cells flagged by FD `f`. O(1): maintained
  /// incrementally as cells are deactivated, symmetric to
  /// ActiveDegreeOfCell.
  int ActiveDegreeOfFd(FdId f) const {
    return FdActive(f) ? fd_active_degree_[Checked(f, NumFds())] : 0;
  }

  /// Deactivates an FD; cells left with no active FD are deactivated too.
  void DeactivateFd(FdId f);

  /// Deactivates a single cell (e.g., the expert certified it clean or it
  /// has been resolved). Idempotent.
  void DeactivateCell(CellId c);

  /// Ids of currently active FDs / cells, ascending.
  std::vector<FdId> ActiveFds() const;
  std::vector<CellId> ActiveCells() const;

  /// Calls `fn(FdId)` for every active FD, ascending. Branch-free word
  /// scan over the active bitmap: only set bits are visited, so sparse
  /// late-session scans skip dead regions a word (64 ids) at a time.
  template <typename Fn>
  void ForEachActiveFd(Fn&& fn) const {
    ForEachSetBit(fd_active_words_, fn);
  }

  /// Calls `fn(CellId)` for every active cell, ascending.
  template <typename Fn>
  void ForEachActiveCell(Fn&& fn) const {
    ForEachSetBit(cell_active_words_, fn);
  }

  /// Looks up the node for `cell`; returns -1 when the cell is not a
  /// violation node.
  CellId FindCell(const Cell& cell) const;

  /// Approximate heap footprint in bytes (container payloads at their
  /// logical sizes, not allocator metadata — the MemoryBudget accounting
  /// convention of DESIGN.md §8). A pure function of the graph content:
  /// every array, including the right-sized probe table, is fully
  /// determined by the merged input, so the figure is identical across
  /// build paths and thread counts. The DatasetRegistry charges shared
  /// graphs with this.
  size_t ApproxMemoryBytes() const;

 private:
  ViolationGraph() = default;

  /// Interns cells and wires adjacency from frozen per-FD cell vectors
  /// (borrowed through raw pointers so both FromPerFdCells layouts share
  /// it), in FD order — the deterministic merge step shared by every
  /// build path.
  static ViolationGraph Merge(
      std::vector<Fd> fds,
      const std::vector<const std::vector<Cell>*>& per_fd);

  static int Checked(int i, int bound) {
    UGUIDE_CHECK(i >= 0 && i < bound) << "graph index out of range";
    return i;
  }

  static bool TestBit(const std::vector<uint64_t>& words, int i) {
    return (words[static_cast<size_t>(i) >> 6] >>
            (static_cast<size_t>(i) & 63)) &
           1u;
  }
  static void ClearBit(std::vector<uint64_t>& words, int i) {
    words[static_cast<size_t>(i) >> 6] &=
        ~(uint64_t{1} << (static_cast<size_t>(i) & 63));
  }

  template <typename Fn>
  static void ForEachSetBit(const std::vector<uint64_t>& words, Fn&& fn) {
    for (size_t w = 0; w < words.size(); ++w) {
      uint64_t bits = words[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<int>(w * 64) + b);
        bits &= bits - 1;
      }
    }
  }

  /// Rebuilds the open-addressed cell index right-sized for cells_.
  void RebuildCellIndex();
  /// Probe slot for `cell`: its slot if interned, else the empty slot
  /// where it would go.
  size_t ProbeSlot(const Cell& cell) const;

  std::vector<Fd> fds_;
  std::vector<Cell> cells_;
  /// CSR adjacency, frozen at Merge: FD f's cells are
  /// fd_cell_edges_[fd_cell_offsets_[f], fd_cell_offsets_[f+1]), and
  /// symmetrically for cells. Offset arrays have N+1 entries.
  std::vector<uint32_t> fd_cell_offsets_;
  std::vector<CellId> fd_cell_edges_;
  std::vector<uint32_t> cell_fd_offsets_;
  std::vector<FdId> cell_fd_edges_;
  /// Active bitmaps: bit i of word i/64 is node i's flag. Bits past the
  /// node count stay zero so word scans never yield phantom ids.
  std::vector<uint64_t> fd_active_words_;
  std::vector<uint64_t> cell_active_words_;
  std::vector<int> fd_active_degree_;
  std::vector<int> cell_active_degree_;
  /// Open-addressed linear-probe cell lookup: power-of-two slot array of
  /// CellIds (-1 empty), keys compared against cells_. Rebuilt right-sized
  /// after Merge for a deterministic footprint.
  std::vector<CellId> index_slots_;
  size_t index_mask_ = 0;
};

}  // namespace uguide

#endif  // UGUIDE_VIOLATIONS_BIPARTITE_GRAPH_H_
