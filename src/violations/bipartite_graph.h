#ifndef UGUIDE_VIOLATIONS_BIPARTITE_GRAPH_H_
#define UGUIDE_VIOLATIONS_BIPARTITE_GRAPH_H_

#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

class ThreadPool;
class ViolationEngine;

/// Index of an FD node in a ViolationGraph.
using FdId = int;
/// Index of a violation (cell) node in a ViolationGraph.
using CellId = int;

/// \brief The bipartite FD <-> violation graph of §3.2.
///
/// Left nodes are candidate FDs; right nodes are the cells they flag; an
/// edge connects an FD to every cell in its g3 removal set. The interactive
/// strategies deactivate nodes as the expert answers (an invalidated FD
/// disappears together with cells only it flagged), so both sides carry
/// active flags rather than being physically removed.
class ViolationGraph {
 public:
  /// Builds the graph for `candidates` over `relation`. FDs that flag no
  /// cell still get a node (with no edges) so FdIds align with the input
  /// set's order. Routes violation detection through a private
  /// partition-backed engine; prefer the engine overload to share the
  /// LHS-partition cache with the rest of a session.
  static ViolationGraph Build(const Relation& relation,
                              const FdSet& candidates);

  /// As above, detecting violations through `engine`. When `pool` drives
  /// more than one thread, per-FD violation sets are computed in parallel
  /// and merged in FD order, so cell ids, adjacency order, and the whole
  /// graph are bit-identical to the serial build at any thread count
  /// (freeze inputs / shard per FD / merge in order — the discipline of
  /// parallel discovery, DESIGN.md §6).
  static ViolationGraph Build(ViolationEngine& engine, const FdSet& candidates,
                              ThreadPool* pool = nullptr);

  /// The original hash-grouping build, retained as the behavioral
  /// reference for the equivalence suite and as the benchmark baseline.
  static ViolationGraph BuildReference(const Relation& relation,
                                       const FdSet& candidates);

  int NumFds() const { return static_cast<int>(fds_.size()); }
  int NumCells() const { return static_cast<int>(cells_.size()); }

  const Fd& fd(FdId f) const { return fds_[Checked(f, NumFds())]; }
  const Cell& cell(CellId c) const { return cells_[Checked(c, NumCells())]; }

  /// Cells flagged by an FD (edges from the left).
  const std::vector<CellId>& CellsOfFd(FdId f) const {
    return fd_to_cells_[Checked(f, NumFds())];
  }

  /// FDs flagging a cell (edges from the right).
  const std::vector<FdId>& FdsOfCell(CellId c) const {
    return cell_to_fds_[Checked(c, NumCells())];
  }

  bool FdActive(FdId f) const { return fd_active_[Checked(f, NumFds())]; }
  bool CellActive(CellId c) const {
    return cell_active_[Checked(c, NumCells())];
  }

  /// Number of *active* FDs flagging cell `c`. O(1): maintained
  /// incrementally as FDs are deactivated (the hot query of every
  /// cell-strategy selection scan).
  int ActiveDegreeOfCell(CellId c) const {
    return CellActive(c) ? cell_active_degree_[Checked(c, NumCells())] : 0;
  }

  /// Number of *active* cells flagged by FD `f`.
  int ActiveDegreeOfFd(FdId f) const;

  /// Deactivates an FD; cells left with no active FD are deactivated too.
  void DeactivateFd(FdId f);

  /// Deactivates a single cell (e.g., the expert certified it clean or it
  /// has been resolved).
  void DeactivateCell(CellId c);

  /// Ids of currently active FDs / cells, ascending.
  std::vector<FdId> ActiveFds() const;
  std::vector<CellId> ActiveCells() const;

  /// Looks up the node for `cell`; returns -1 when the cell is not a
  /// violation node.
  CellId FindCell(const Cell& cell) const;

  /// Approximate heap footprint in bytes (container payloads, not
  /// allocator metadata — the MemoryBudget accounting convention of
  /// DESIGN.md §8). The DatasetRegistry charges shared graphs with this.
  size_t ApproxMemoryBytes() const;

 private:
  ViolationGraph() = default;

  /// Interns cells and wires adjacency from frozen per-FD cell vectors,
  /// in FD order — the deterministic merge step shared by every build
  /// path.
  static ViolationGraph Merge(std::vector<Fd> fds,
                              std::vector<std::vector<Cell>> per_fd);

  static int Checked(int i, int bound) {
    UGUIDE_CHECK(i >= 0 && i < bound) << "graph index out of range";
    return i;
  }

  std::vector<Fd> fds_;
  std::vector<Cell> cells_;
  std::vector<std::vector<CellId>> fd_to_cells_;
  std::vector<std::vector<FdId>> cell_to_fds_;
  std::vector<bool> fd_active_;
  std::vector<bool> cell_active_;
  std::vector<int> cell_active_degree_;
  std::unordered_map<Cell, CellId, CellHash> cell_index_;
};

}  // namespace uguide

#endif  // UGUIDE_VIOLATIONS_BIPARTITE_GRAPH_H_
