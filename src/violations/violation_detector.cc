#include "violations/violation_detector.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "violations/violation_engine.h"

namespace uguide {

namespace {

struct VecHash {
  size_t operator()(const std::vector<ValueCode>& v) const {
    size_t seed = v.size();
    for (ValueCode c : v) HashCombine(seed, c);
    return seed;
  }
};

// Groups row ids by their projection onto `cols` (per-group row order
// follows the relation, giving deterministic output).
std::unordered_map<std::vector<ValueCode>, std::vector<TupleId>, VecHash>
GroupByProjection(const Relation& relation, const std::vector<int>& cols) {
  std::unordered_map<std::vector<ValueCode>, std::vector<TupleId>, VecHash>
      groups;
  std::vector<ValueCode> key(cols.size());
  for (TupleId r = 0; r < relation.NumRows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      key[i] = relation.Code(r, cols[i]);
    }
    groups[key].push_back(r);
  }
  return groups;
}

// True iff the group holds at least two distinct RHS values.
bool GroupIsImpure(const Relation& relation, int rhs,
                   const std::vector<TupleId>& group) {
  if (group.size() < 2) return false;
  const ValueCode first = relation.Code(group[0], rhs);
  for (size_t i = 1; i < group.size(); ++i) {
    if (relation.Code(group[i], rhs) != first) return true;
  }
  return false;
}

// Appends the g3-minority rows of one LHS-group to `out`. The majority
// value is the most frequent RHS code; ties break toward the code seen
// first in the group (deterministic).
void CollectMinorityRows(const Relation& relation, int rhs,
                         const std::vector<TupleId>& group,
                         std::vector<TupleId>& out) {
  if (group.size() < 2) return;
  std::unordered_map<ValueCode, size_t> counts;
  std::vector<ValueCode> first_seen;
  for (TupleId r : group) {
    ValueCode code = relation.Code(r, rhs);
    if (counts[code]++ == 0) first_seen.push_back(code);
  }
  if (counts.size() <= 1) return;
  ValueCode majority = first_seen[0];
  for (ValueCode code : first_seen) {
    if (counts[code] > counts[majority]) majority = code;
  }
  for (TupleId r : group) {
    if (relation.Code(r, rhs) != majority) out.push_back(r);
  }
}

}  // namespace

std::vector<TupleId> ViolatingTuples(const Relation& relation, const Fd& fd) {
  UGUIDE_CHECK(fd.IsValidShape());
  UGUIDE_CHECK(fd.rhs < relation.NumAttributes());
  std::vector<TupleId> out;
  auto groups = GroupByProjection(relation, fd.lhs.ToVector());
  for (const auto& [key, group] : groups) {
    if (GroupIsImpure(relation, fd.rhs, group)) {
      out.insert(out.end(), group.begin(), group.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Cell> ViolatingCells(const Relation& relation, const Fd& fd) {
  std::vector<TupleId> rows = ViolatingTuples(relation, fd);
  std::vector<Cell> cells;
  cells.reserve(rows.size());
  for (TupleId r : rows) cells.push_back(Cell{r, fd.rhs});
  return cells;
}

std::vector<TupleId> G3RemovalTuples(const Relation& relation, const Fd& fd) {
  UGUIDE_CHECK(fd.IsValidShape());
  UGUIDE_CHECK(fd.rhs < relation.NumAttributes());
  std::vector<TupleId> out;
  auto groups = GroupByProjection(relation, fd.lhs.ToVector());
  for (const auto& [key, group] : groups) {
    CollectMinorityRows(relation, fd.rhs, group, out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Cell> G3RemovalCells(const Relation& relation, const Fd& fd) {
  std::vector<TupleId> rows = G3RemovalTuples(relation, fd);
  std::vector<Cell> cells;
  cells.reserve(rows.size());
  for (TupleId r : rows) cells.push_back(Cell{r, fd.rhs});
  return cells;
}

bool HasViolations(const Relation& relation, const Fd& fd) {
  UGUIDE_CHECK(fd.IsValidShape());
  auto groups = GroupByProjection(relation, fd.lhs.ToVector());
  for (const auto& [key, group] : groups) {
    if (GroupIsImpure(relation, fd.rhs, group)) return true;
  }
  return false;
}

std::vector<int> ViolationCountPerTuple(const Relation& relation,
                                        const FdSet& fds) {
  std::vector<int> counts(static_cast<size_t>(relation.NumRows()), 0);
  for (const Fd& fd : fds) {
    for (TupleId r : G3RemovalTuples(relation, fd)) {
      ++counts[static_cast<size_t>(r)];
    }
  }
  return counts;
}

TrueViolationSet TrueViolationSet::Compute(const Relation& relation,
                                           const FdSet& fds) {
  ViolationEngine engine(&relation);
  return Compute(engine, fds);
}

TrueViolationSet TrueViolationSet::Compute(ViolationEngine& engine,
                                           const FdSet& fds) {
  TrueViolationSet set;
  set.row_violates_.assign(
      static_cast<size_t>(engine.relation().NumRows()), false);
  for (const Fd& fd : fds) {
    for (const Cell& cell : engine.ViolatingCells(fd)) {
      set.cells_.insert(cell);
      set.row_violates_[static_cast<size_t>(cell.row)] = true;
    }
  }
  return set;
}

bool TrueViolationSet::TupleViolates(TupleId row, int /*num_attributes*/)
    const {
  return row >= 0 && static_cast<size_t>(row) < row_violates_.size() &&
         row_violates_[static_cast<size_t>(row)];
}

std::vector<Cell> TrueViolationSet::ToVector() const {
  std::vector<Cell> out(cells_.begin(), cells_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace uguide
