#ifndef UGUIDE_VIOLATIONS_VIOLATION_ENGINE_H_
#define UGUIDE_VIOLATIONS_VIOLATION_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "common/memory_budget.h"
#include "discovery/partition.h"
#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

/// \brief Partition-backed violation detector shared by every questioning
/// call site.
///
/// The hash-based reference detector (violation_detector.h) re-groups the
/// whole relation per FD: full-table hashing with a heap-allocated
/// composite key per row, repeated at each of the six call sites that need
/// violation sets. This engine computes the same sets from stripped
/// partitions instead: the violating rows of X -> A are the rows of
/// non-singleton classes of pi_X that are impure on A's column codes, and
/// the g3-minority rows fall out of the same class scan. pi_X is obtained
/// from an LRU, MemoryBudget-charged PartitionStore keyed by LHS, so the
/// many candidate AFDs sharing LHS (prefixes) after relaxation pay for each
/// partition once across *all* call sites in a session (see DESIGN.md §9).
///
/// Output contract: every query returns results byte-identical to the
/// reference detector. Stripped classes list rows in ascending order and
/// singleton classes can neither be impure nor contribute minority rows,
/// so impurity tests, first-seen majority tie-breaks, and the final sorted
/// row/cell vectors coincide exactly; the randomized equivalence suite in
/// tests/violation_engine_test.cc enforces this.
///
/// Thread safety: all methods are safe to call concurrently (the store is
/// internally locked, counters are atomic); the parallel
/// ViolationGraph::Build relies on this.
class ViolationEngine {
 public:
  /// `relation` must outlive the engine; `budget` may be null (partitions
  /// are then cached without eviction, exactly like ungoverned discovery).
  explicit ViolationEngine(const Relation* relation,
                           MemoryBudget* budget = nullptr);

  const Relation& relation() const { return *relation_; }

  /// Rows participating in a violating pair of `fd`, ascending.
  std::vector<TupleId> ViolatingTuples(const Fd& fd);

  /// The RHS cells of ViolatingTuples, row-ascending.
  std::vector<Cell> ViolatingCells(const Fd& fd);

  /// The g3 removal set of `fd`, ascending (minority rows per LHS class;
  /// ties break toward the first-seen RHS code, as in the reference).
  std::vector<TupleId> G3RemovalTuples(const Fd& fd);

  /// The RHS cells of G3RemovalTuples.
  std::vector<Cell> G3RemovalCells(const Fd& fd);

  /// |G3RemovalTuples(fd)| without materializing the sorted vector.
  size_t G3RemovalCount(const Fd& fd);

  /// True iff `fd` has at least one violating pair (early-out class scan).
  bool HasViolations(const Fd& fd);

  /// For every tuple, the number of FDs in `fds` whose g3 removal set
  /// contains it. LHS partitions are shared across the FDs.
  std::vector<int> ViolationCountPerTuple(const FdSet& fds);

  /// The (cached) stripped partition of `attrs`; composed recursively from
  /// cached sub-partitions on a miss.
  std::shared_ptr<const Partition> LhsPartition(const AttributeSet& attrs);

  /// Seeds the store with an externally owned partition handle (pinned, not
  /// charged to this engine's budget). The live dataset injects patched
  /// column partitions and surviving products here so a fresh epoch engine
  /// starts warm instead of rebuilding from the relation.
  void SeedPartition(const AttributeSet& attrs,
                     std::shared_ptr<const Partition> partition);

  /// All partitions currently resident in the store (see
  /// PartitionStore::Snapshot); the live dataset harvests an outgoing
  /// epoch's products through this.
  std::vector<std::pair<AttributeSet, std::shared_ptr<const Partition>>>
  StorePartitions() const;

  /// Partition lookups served from the store without recomputation.
  size_t partition_hits() const;
  /// Partition lookups that had to (re)build the partition.
  size_t partition_misses() const;

 private:
  /// G3RemovalTuples without the final sort (class-order output), for
  /// callers that only aggregate.
  template <typename RowFn>
  void ForEachG3RemovalRow(const Fd& fd, const RowFn& fn);

  const Relation* relation_;
  PartitionStore store_;
  std::atomic<size_t> lookups_{0};
};

/// \brief Borrows a shared ViolationEngine or owns a local fallback.
///
/// Call sites accept an optional engine (sessions share one across graph
/// construction, question building, and evaluation); standalone callers
/// pass null and get a private engine over `relation` with the same
/// behavior, so every path routes through partition-backed detection.
class EngineRef {
 public:
  EngineRef(ViolationEngine* shared, const Relation* relation) {
    if (shared != nullptr) {
      engine_ = shared;
    } else {
      local_.emplace(relation);
      engine_ = &*local_;
    }
  }

  EngineRef(const EngineRef&) = delete;
  EngineRef& operator=(const EngineRef&) = delete;

  ViolationEngine& operator*() const { return *engine_; }
  ViolationEngine* operator->() const { return engine_; }
  ViolationEngine* get() const { return engine_; }

 private:
  std::optional<ViolationEngine> local_;
  ViolationEngine* engine_ = nullptr;
};

}  // namespace uguide

#endif  // UGUIDE_VIOLATIONS_VIOLATION_ENGINE_H_
