#include "violations/violation_engine.h"

#include <algorithm>

namespace uguide {

namespace {

// True iff the class holds at least two distinct codes in `codes`. Classes
// always have >= 2 members (stripped partition invariant).
bool ClassIsImpure(const std::vector<ValueCode>& codes,
                   Partition::ClassView cls) {
  const ValueCode first = codes[static_cast<size_t>(cls[0])];
  for (size_t i = 1; i < cls.size(); ++i) {
    if (codes[static_cast<size_t>(cls[i])] != first) return true;
  }
  return false;
}

// Appends the g3-minority rows of one LHS class to `out`. Mirrors the
// reference detector exactly: the majority is the most frequent RHS code,
// ties breaking toward the code seen first in the class — classes list
// rows ascending, i.e. in relation order, so the tie-break coincides with
// the hash-grouped reference. Classes have few distinct codes in practice,
// so a linear scan over a flat (code, count) array beats hashing; the
// `distinct` vectors are caller-owned scratch reused across classes.
void CollectMinorityRows(const std::vector<ValueCode>& codes,
                         Partition::ClassView cls,
                         std::vector<ValueCode>& distinct_codes,
                         std::vector<size_t>& distinct_counts,
                         std::vector<TupleId>& out) {
  distinct_codes.clear();
  distinct_counts.clear();
  for (TupleId r : cls) {
    const ValueCode code = codes[static_cast<size_t>(r)];
    size_t i = 0;
    for (; i < distinct_codes.size(); ++i) {
      if (distinct_codes[i] == code) break;
    }
    if (i == distinct_codes.size()) {
      distinct_codes.push_back(code);
      distinct_counts.push_back(1);
    } else {
      ++distinct_counts[i];
    }
  }
  if (distinct_codes.size() <= 1) return;
  // first_seen order + strict > keeps the tie-break toward the earlier code.
  size_t majority = 0;
  for (size_t i = 1; i < distinct_codes.size(); ++i) {
    if (distinct_counts[i] > distinct_counts[majority]) majority = i;
  }
  const ValueCode majority_code = distinct_codes[majority];
  for (TupleId r : cls) {
    if (codes[static_cast<size_t>(r)] != majority_code) out.push_back(r);
  }
}

}  // namespace

ViolationEngine::ViolationEngine(const Relation* relation,
                                 MemoryBudget* budget)
    : relation_(relation), store_(relation, budget) {
  UGUIDE_CHECK(relation != nullptr);
}

std::shared_ptr<const Partition> ViolationEngine::LhsPartition(
    const AttributeSet& attrs) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  return store_.Get(attrs, [&]() -> Partition {
    if (attrs.Empty()) return Partition::ForEmptySet(relation_->NumRows());
    if (attrs.Size() == 1) {
      return Partition::ForColumn(*relation_, attrs.Lowest());
    }
    // Compose from cached sub-partitions: split off the lowest attribute
    // and recurse, the same suffix decomposition as PartitionCache, so
    // candidates sharing LHS suffixes reuse each other's work. The store
    // releases its lock before invoking this builder, making the recursive
    // Get safe.
    const int low = attrs.Lowest();
    std::shared_ptr<const Partition> rest = LhsPartition(attrs.Without(low));
    std::shared_ptr<const Partition> col =
        LhsPartition(AttributeSet::Single(low));
    return rest->Product(*col);
  });
}

std::vector<TupleId> ViolationEngine::ViolatingTuples(const Fd& fd) {
  UGUIDE_CHECK(fd.IsValidShape());
  UGUIDE_CHECK(fd.rhs < relation_->NumAttributes());
  const std::vector<ValueCode>& codes = relation_->ColumnCodes(fd.rhs);
  std::shared_ptr<const Partition> lhs = LhsPartition(fd.lhs);
  std::vector<TupleId> out;
  for (size_t i = 0; i < lhs->NumClasses(); ++i) {
    const Partition::ClassView cls = lhs->Class(i);
    if (ClassIsImpure(codes, cls)) {
      out.insert(out.end(), cls.begin(), cls.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Cell> ViolationEngine::ViolatingCells(const Fd& fd) {
  std::vector<TupleId> rows = ViolatingTuples(fd);
  std::vector<Cell> cells;
  cells.reserve(rows.size());
  for (TupleId r : rows) cells.push_back(Cell{r, fd.rhs});
  return cells;
}

template <typename RowFn>
void ViolationEngine::ForEachG3RemovalRow(const Fd& fd, const RowFn& fn) {
  UGUIDE_CHECK(fd.IsValidShape());
  UGUIDE_CHECK(fd.rhs < relation_->NumAttributes());
  const std::vector<ValueCode>& codes = relation_->ColumnCodes(fd.rhs);
  std::shared_ptr<const Partition> lhs = LhsPartition(fd.lhs);
  std::vector<TupleId> minority;
  std::vector<ValueCode> distinct_codes;
  std::vector<size_t> distinct_counts;
  for (size_t i = 0; i < lhs->NumClasses(); ++i) {
    minority.clear();
    CollectMinorityRows(codes, lhs->Class(i), distinct_codes, distinct_counts,
                        minority);
    for (TupleId r : minority) fn(r);
  }
}

std::vector<TupleId> ViolationEngine::G3RemovalTuples(const Fd& fd) {
  std::vector<TupleId> out;
  ForEachG3RemovalRow(fd, [&](TupleId r) { out.push_back(r); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Cell> ViolationEngine::G3RemovalCells(const Fd& fd) {
  std::vector<TupleId> rows = G3RemovalTuples(fd);
  std::vector<Cell> cells;
  cells.reserve(rows.size());
  for (TupleId r : rows) cells.push_back(Cell{r, fd.rhs});
  return cells;
}

size_t ViolationEngine::G3RemovalCount(const Fd& fd) {
  size_t count = 0;
  ForEachG3RemovalRow(fd, [&](TupleId) { ++count; });
  return count;
}

bool ViolationEngine::HasViolations(const Fd& fd) {
  UGUIDE_CHECK(fd.IsValidShape());
  UGUIDE_CHECK(fd.rhs < relation_->NumAttributes());
  const std::vector<ValueCode>& codes = relation_->ColumnCodes(fd.rhs);
  std::shared_ptr<const Partition> lhs = LhsPartition(fd.lhs);
  for (size_t i = 0; i < lhs->NumClasses(); ++i) {
    if (ClassIsImpure(codes, lhs->Class(i))) return true;
  }
  return false;
}

std::vector<int> ViolationEngine::ViolationCountPerTuple(const FdSet& fds) {
  std::vector<int> counts(static_cast<size_t>(relation_->NumRows()), 0);
  for (const Fd& fd : fds) {
    ForEachG3RemovalRow(fd,
                        [&](TupleId r) { ++counts[static_cast<size_t>(r)]; });
  }
  return counts;
}

void ViolationEngine::SeedPartition(const AttributeSet& attrs,
                                    std::shared_ptr<const Partition> partition) {
  store_.PutShared(attrs, std::move(partition), /*pinned=*/true);
}

std::vector<std::pair<AttributeSet, std::shared_ptr<const Partition>>>
ViolationEngine::StorePartitions() const {
  return store_.Snapshot();
}

size_t ViolationEngine::partition_hits() const {
  const size_t lookups = lookups_.load(std::memory_order_relaxed);
  const size_t misses = store_.recomputes();
  return lookups >= misses ? lookups - misses : 0;
}

size_t ViolationEngine::partition_misses() const {
  return store_.recomputes();
}

}  // namespace uguide
