#include "violations/bipartite_graph.h"

#include "violations/violation_detector.h"

namespace uguide {

ViolationGraph ViolationGraph::Build(const Relation& relation,
                                     const FdSet& candidates) {
  ViolationGraph g;
  g.fds_.assign(candidates.begin(), candidates.end());
  g.fd_to_cells_.resize(g.fds_.size());
  g.fd_active_.assign(g.fds_.size(), true);

  for (FdId f = 0; f < g.NumFds(); ++f) {
    for (const Cell& cell :
         ViolatingCells(relation, g.fds_[static_cast<size_t>(f)])) {
      auto [it, inserted] =
          g.cell_index_.emplace(cell, static_cast<CellId>(g.cells_.size()));
      if (inserted) {
        g.cells_.push_back(cell);
        g.cell_to_fds_.emplace_back();
        g.cell_active_.push_back(true);
      }
      CellId c = it->second;
      g.fd_to_cells_[static_cast<size_t>(f)].push_back(c);
      g.cell_to_fds_[static_cast<size_t>(c)].push_back(f);
    }
  }
  g.cell_active_degree_.resize(g.cells_.size());
  for (CellId c = 0; c < g.NumCells(); ++c) {
    g.cell_active_degree_[static_cast<size_t>(c)] =
        static_cast<int>(g.cell_to_fds_[static_cast<size_t>(c)].size());
  }
  return g;
}

int ViolationGraph::ActiveDegreeOfFd(FdId f) const {
  if (!FdActive(f)) return 0;
  int degree = 0;
  for (CellId c : fd_to_cells_[static_cast<size_t>(f)]) {
    if (cell_active_[static_cast<size_t>(c)]) ++degree;
  }
  return degree;
}

void ViolationGraph::DeactivateFd(FdId f) {
  Checked(f, NumFds());
  if (!fd_active_[static_cast<size_t>(f)]) return;
  fd_active_[static_cast<size_t>(f)] = false;
  // Cells orphaned by this removal are no longer violations of anything.
  for (CellId c : fd_to_cells_[static_cast<size_t>(f)]) {
    int& degree = cell_active_degree_[static_cast<size_t>(c)];
    --degree;
    if (cell_active_[static_cast<size_t>(c)] && degree == 0) {
      cell_active_[static_cast<size_t>(c)] = false;
    }
  }
}

void ViolationGraph::DeactivateCell(CellId c) {
  Checked(c, NumCells());
  cell_active_[static_cast<size_t>(c)] = false;
}

std::vector<FdId> ViolationGraph::ActiveFds() const {
  std::vector<FdId> out;
  for (FdId f = 0; f < NumFds(); ++f) {
    if (fd_active_[static_cast<size_t>(f)]) out.push_back(f);
  }
  return out;
}

std::vector<CellId> ViolationGraph::ActiveCells() const {
  std::vector<CellId> out;
  for (CellId c = 0; c < NumCells(); ++c) {
    if (cell_active_[static_cast<size_t>(c)]) out.push_back(c);
  }
  return out;
}

CellId ViolationGraph::FindCell(const Cell& cell) const {
  auto it = cell_index_.find(cell);
  return it == cell_index_.end() ? -1 : it->second;
}

}  // namespace uguide
