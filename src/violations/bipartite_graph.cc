#include "violations/bipartite_graph.h"

#include <utility>

#include "common/thread_pool.h"
#include "violations/violation_detector.h"
#include "violations/violation_engine.h"

namespace uguide {

// Assembles a graph from per-FD violation-cell vectors. Cells are
// interned in FD order, so the result is a pure function of the inputs —
// independent of how (or on how many threads) the vectors were produced.
ViolationGraph ViolationGraph::Merge(std::vector<Fd> fds,
                                     std::vector<std::vector<Cell>> per_fd) {
  ViolationGraph g;
  g.fds_ = std::move(fds);
  g.fd_to_cells_.resize(g.fds_.size());
  g.fd_active_.assign(g.fds_.size(), true);

  for (FdId f = 0; f < g.NumFds(); ++f) {
    for (const Cell& cell : per_fd[static_cast<size_t>(f)]) {
      auto [it, inserted] =
          g.cell_index_.emplace(cell, static_cast<CellId>(g.cells_.size()));
      if (inserted) {
        g.cells_.push_back(cell);
        g.cell_to_fds_.emplace_back();
        g.cell_active_.push_back(true);
      }
      CellId c = it->second;
      g.fd_to_cells_[static_cast<size_t>(f)].push_back(c);
      g.cell_to_fds_[static_cast<size_t>(c)].push_back(f);
    }
  }
  g.cell_active_degree_.resize(g.cells_.size());
  for (CellId c = 0; c < g.NumCells(); ++c) {
    g.cell_active_degree_[static_cast<size_t>(c)] =
        static_cast<int>(g.cell_to_fds_[static_cast<size_t>(c)].size());
  }
  return g;
}

ViolationGraph ViolationGraph::Build(const Relation& relation,
                                     const FdSet& candidates) {
  ViolationEngine local(&relation);
  return Build(local, candidates, /*pool=*/nullptr);
}

ViolationGraph ViolationGraph::Build(ViolationEngine& engine,
                                     const FdSet& candidates,
                                     ThreadPool* pool) {
  // Freeze the FD list, shard the per-FD violation scans across the pool
  // (the engine is thread-safe), then merge serially in FD order: the
  // merge sees identical per-FD cell vectors regardless of thread count,
  // so cell ids and adjacency order are bit-identical to the serial build.
  std::vector<Fd> fds(candidates.begin(), candidates.end());
  std::vector<std::vector<Cell>> per_fd;
  if (pool != nullptr && pool->num_threads() > 1 && fds.size() > 1) {
    per_fd = pool->ParallelMap(
        fds, [&](const Fd& fd) { return engine.ViolatingCells(fd); });
  } else {
    per_fd.reserve(fds.size());
    for (const Fd& fd : fds) per_fd.push_back(engine.ViolatingCells(fd));
  }
  return Merge(std::move(fds), std::move(per_fd));
}

ViolationGraph ViolationGraph::BuildReference(const Relation& relation,
                                              const FdSet& candidates) {
  std::vector<Fd> fds(candidates.begin(), candidates.end());
  std::vector<std::vector<Cell>> per_fd;
  per_fd.reserve(fds.size());
  for (const Fd& fd : fds) {
    per_fd.push_back(ViolatingCells(relation, fd));
  }
  return Merge(std::move(fds), std::move(per_fd));
}

int ViolationGraph::ActiveDegreeOfFd(FdId f) const {
  if (!FdActive(f)) return 0;
  int degree = 0;
  for (CellId c : fd_to_cells_[static_cast<size_t>(f)]) {
    if (cell_active_[static_cast<size_t>(c)]) ++degree;
  }
  return degree;
}

void ViolationGraph::DeactivateFd(FdId f) {
  Checked(f, NumFds());
  if (!fd_active_[static_cast<size_t>(f)]) return;
  fd_active_[static_cast<size_t>(f)] = false;
  // Cells orphaned by this removal are no longer violations of anything.
  for (CellId c : fd_to_cells_[static_cast<size_t>(f)]) {
    int& degree = cell_active_degree_[static_cast<size_t>(c)];
    --degree;
    if (cell_active_[static_cast<size_t>(c)] && degree == 0) {
      cell_active_[static_cast<size_t>(c)] = false;
    }
  }
}

void ViolationGraph::DeactivateCell(CellId c) {
  Checked(c, NumCells());
  cell_active_[static_cast<size_t>(c)] = false;
}

std::vector<FdId> ViolationGraph::ActiveFds() const {
  std::vector<FdId> out;
  for (FdId f = 0; f < NumFds(); ++f) {
    if (fd_active_[static_cast<size_t>(f)]) out.push_back(f);
  }
  return out;
}

std::vector<CellId> ViolationGraph::ActiveCells() const {
  std::vector<CellId> out;
  for (CellId c = 0; c < NumCells(); ++c) {
    if (cell_active_[static_cast<size_t>(c)]) out.push_back(c);
  }
  return out;
}

CellId ViolationGraph::FindCell(const Cell& cell) const {
  auto it = cell_index_.find(cell);
  return it == cell_index_.end() ? -1 : it->second;
}

size_t ViolationGraph::ApproxMemoryBytes() const {
  size_t bytes = fds_.size() * sizeof(Fd) + cells_.size() * sizeof(Cell);
  for (const auto& adjacency : fd_to_cells_) {
    bytes += sizeof(adjacency) + adjacency.size() * sizeof(CellId);
  }
  for (const auto& adjacency : cell_to_fds_) {
    bytes += sizeof(adjacency) + adjacency.size() * sizeof(FdId);
  }
  bytes += fd_active_.size() / 8 + cell_active_.size() / 8;
  bytes += cell_active_degree_.size() * sizeof(int);
  bytes +=
      cell_index_.size() * (sizeof(Cell) + sizeof(CellId) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace uguide
