#include "violations/bipartite_graph.h"

#include <utility>

#include "common/thread_pool.h"
#include "violations/violation_detector.h"
#include "violations/violation_engine.h"

namespace uguide {

namespace {

// Smallest power of two >= n (and >= 16, so tiny graphs still probe well).
size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

std::vector<uint64_t> AllOnesBitmap(size_t n) {
  std::vector<uint64_t> words((n + 63) / 64, ~uint64_t{0});
  // Keep bits past n zero: word scans must never yield phantom ids.
  if (n % 64 != 0 && !words.empty()) {
    words.back() = (uint64_t{1} << (n % 64)) - 1;
  }
  return words;
}

}  // namespace

size_t ViolationGraph::ProbeSlot(const Cell& cell) const {
  size_t slot = CellHash{}(cell) & index_mask_;
  while (true) {
    const CellId id = index_slots_[slot];
    if (id < 0 || cells_[static_cast<size_t>(id)] == cell) return slot;
    slot = (slot + 1) & index_mask_;
  }
}

void ViolationGraph::RebuildCellIndex() {
  // Load factor <= 0.5: slots = pow2 >= 2 * cells. Insertion order does not
  // affect the slot assignment's determinism — the table content is a pure
  // function of the cell set and the probe sequence — but inserting in id
  // order keeps the build itself deterministic too.
  index_slots_.assign(NextPow2(cells_.size() * 2), -1);
  index_mask_ = index_slots_.size() - 1;
  for (CellId c = 0; c < NumCells(); ++c) {
    index_slots_[ProbeSlot(cells_[static_cast<size_t>(c)])] = c;
  }
}

// Assembles a graph from per-FD violation-cell vectors. Cells are
// interned in FD order, so the result is a pure function of the inputs —
// independent of how (or on how many threads) the vectors were produced.
ViolationGraph ViolationGraph::Merge(
    std::vector<Fd> fds, const std::vector<const std::vector<Cell>*>& per_fd) {
  ViolationGraph g;
  g.fds_ = std::move(fds);

  size_t total_edges = 0;
  for (const auto* cells : per_fd) total_edges += cells->size();

  // Pass 1: intern cells in FD order (first sighting assigns the id) and
  // emit the FD-side CSR in the same sweep — edges are already grouped by
  // FD. The probe table is sized for the worst case (every edge a distinct
  // cell) during interning and rebuilt right-sized afterwards.
  g.fd_cell_offsets_.reserve(g.fds_.size() + 1);
  g.fd_cell_offsets_.push_back(0);
  g.fd_cell_edges_.reserve(total_edges);
  g.index_slots_.assign(NextPow2(total_edges * 2), -1);
  g.index_mask_ = g.index_slots_.size() - 1;
  for (FdId f = 0; f < g.NumFds(); ++f) {
    for (const Cell& cell : *per_fd[static_cast<size_t>(f)]) {
      const size_t slot = g.ProbeSlot(cell);
      CellId c = g.index_slots_[slot];
      if (c < 0) {
        c = static_cast<CellId>(g.cells_.size());
        g.index_slots_[slot] = c;
        g.cells_.push_back(cell);
      }
      g.fd_cell_edges_.push_back(c);
    }
    g.fd_cell_offsets_.push_back(
        static_cast<uint32_t>(g.fd_cell_edges_.size()));
  }

  // Pass 2: invert to the cell-side CSR — count degrees, prefix-sum, then
  // scatter FD ids in ascending-f order (matching the interleaved
  // push_back order of the nested-vector layout).
  g.cell_fd_offsets_.assign(g.cells_.size() + 1, 0);
  for (CellId c : g.fd_cell_edges_) {
    ++g.cell_fd_offsets_[static_cast<size_t>(c) + 1];
  }
  for (size_t i = 1; i < g.cell_fd_offsets_.size(); ++i) {
    g.cell_fd_offsets_[i] += g.cell_fd_offsets_[i - 1];
  }
  g.cell_fd_edges_.resize(total_edges);
  std::vector<uint32_t> cursor(g.cell_fd_offsets_.begin(),
                               g.cell_fd_offsets_.end() - 1);
  for (FdId f = 0; f < g.NumFds(); ++f) {
    const uint32_t begin = g.fd_cell_offsets_[static_cast<size_t>(f)];
    const uint32_t end = g.fd_cell_offsets_[static_cast<size_t>(f) + 1];
    for (uint32_t e = begin; e < end; ++e) {
      const CellId c = g.fd_cell_edges_[e];
      g.cell_fd_edges_[cursor[static_cast<size_t>(c)]++] = f;
    }
  }

  // Active state: everything starts live; both degree counters start at
  // the full adjacency size.
  g.fd_active_words_ = AllOnesBitmap(g.fds_.size());
  g.cell_active_words_ = AllOnesBitmap(g.cells_.size());
  g.fd_active_degree_.resize(g.fds_.size());
  for (FdId f = 0; f < g.NumFds(); ++f) {
    g.fd_active_degree_[static_cast<size_t>(f)] =
        static_cast<int>(g.fd_cell_offsets_[static_cast<size_t>(f) + 1] -
                         g.fd_cell_offsets_[static_cast<size_t>(f)]);
  }
  g.cell_active_degree_.resize(g.cells_.size());
  for (CellId c = 0; c < g.NumCells(); ++c) {
    g.cell_active_degree_[static_cast<size_t>(c)] =
        static_cast<int>(g.cell_fd_offsets_[static_cast<size_t>(c) + 1] -
                         g.cell_fd_offsets_[static_cast<size_t>(c)]);
  }

  // Right-size the probe table. When the worst-case table already has the
  // right-sized capacity (common once duplicates across FDs are rare), the
  // interning table IS the rebuilt one — both insert the same cells in id
  // order under the same mask — so the full rehash is skipped. Either way
  // the final table is the same pure function of the graph's content.
  if (g.index_slots_.size() != NextPow2(g.cells_.size() * 2)) {
    g.RebuildCellIndex();
  }
  return g;
}

namespace {

/// Borrows every vector in `per_fd` for the pointer-view Merge.
std::vector<const std::vector<Cell>*> ViewsOf(
    const std::vector<std::vector<Cell>>& per_fd) {
  std::vector<const std::vector<Cell>*> views;
  views.reserve(per_fd.size());
  for (const auto& cells : per_fd) views.push_back(&cells);
  return views;
}

}  // namespace

ViolationGraph ViolationGraph::FromPerFdCells(
    std::vector<Fd> fds, const std::vector<std::vector<Cell>>& per_fd) {
  return Merge(std::move(fds), ViewsOf(per_fd));
}

ViolationGraph ViolationGraph::FromPerFdCells(
    std::vector<Fd> fds,
    const std::vector<std::shared_ptr<const std::vector<Cell>>>& per_fd) {
  std::vector<const std::vector<Cell>*> views;
  views.reserve(per_fd.size());
  for (const auto& cells : per_fd) views.push_back(cells.get());
  return Merge(std::move(fds), views);
}

ViolationGraph ViolationGraph::Build(const Relation& relation,
                                     const FdSet& candidates) {
  ViolationEngine local(&relation);
  return Build(local, candidates, /*pool=*/nullptr);
}

ViolationGraph ViolationGraph::Build(ViolationEngine& engine,
                                     const FdSet& candidates,
                                     ThreadPool* pool) {
  // Freeze the FD list, shard the per-FD violation scans across the pool
  // (the engine is thread-safe), then merge serially in FD order: the
  // merge sees identical per-FD cell vectors regardless of thread count,
  // so cell ids and adjacency order are bit-identical to the serial build.
  std::vector<Fd> fds(candidates.begin(), candidates.end());
  std::vector<std::vector<Cell>> per_fd;
  if (pool != nullptr && pool->num_threads() > 1 && fds.size() > 1) {
    per_fd = pool->ParallelMap(
        fds, [&](const Fd& fd) { return engine.ViolatingCells(fd); });
  } else {
    per_fd.reserve(fds.size());
    for (const Fd& fd : fds) per_fd.push_back(engine.ViolatingCells(fd));
  }
  return Merge(std::move(fds), ViewsOf(per_fd));
}

ViolationGraph ViolationGraph::BuildReference(const Relation& relation,
                                              const FdSet& candidates) {
  std::vector<Fd> fds(candidates.begin(), candidates.end());
  std::vector<std::vector<Cell>> per_fd;
  per_fd.reserve(fds.size());
  for (const Fd& fd : fds) {
    per_fd.push_back(ViolatingCells(relation, fd));
  }
  return Merge(std::move(fds), ViewsOf(per_fd));
}

void ViolationGraph::DeactivateFd(FdId f) {
  Checked(f, NumFds());
  if (!FdActive(f)) return;
  ClearBit(fd_active_words_, f);
  // Cells orphaned by this removal are no longer violations of anything.
  // The cell-side degree is decremented unconditionally (it tracks active
  // *FDs*, and this FD was active); the cascade to DeactivateCell keeps
  // the FD-side degrees in sync.
  for (CellId c : CellsOfFd(f)) {
    int& degree = cell_active_degree_[static_cast<size_t>(c)];
    --degree;
    if (degree == 0 && CellActive(c)) DeactivateCell(c);
  }
}

void ViolationGraph::DeactivateCell(CellId c) {
  Checked(c, NumCells());
  if (!CellActive(c)) return;
  ClearBit(cell_active_words_, c);
  // Keep per-FD active-cell counts exact. A cell deactivates at most once
  // (guard above), so each adjacent FD is decremented exactly once per
  // cell. Inactive FDs are updated too — harmless, since their
  // ActiveDegreeOfFd reads 0 regardless.
  for (FdId f : FdsOfCell(c)) {
    --fd_active_degree_[static_cast<size_t>(f)];
  }
}

std::vector<FdId> ViolationGraph::ActiveFds() const {
  std::vector<FdId> out;
  ForEachActiveFd([&](FdId f) { out.push_back(f); });
  return out;
}

std::vector<CellId> ViolationGraph::ActiveCells() const {
  std::vector<CellId> out;
  ForEachActiveCell([&](CellId c) { out.push_back(c); });
  return out;
}

CellId ViolationGraph::FindCell(const Cell& cell) const {
  if (index_slots_.empty()) return -1;
  return index_slots_[ProbeSlot(cell)];
}

size_t ViolationGraph::ApproxMemoryBytes() const {
  return fds_.size() * sizeof(Fd) + cells_.size() * sizeof(Cell) +
         fd_cell_offsets_.size() * sizeof(uint32_t) +
         fd_cell_edges_.size() * sizeof(CellId) +
         cell_fd_offsets_.size() * sizeof(uint32_t) +
         cell_fd_edges_.size() * sizeof(FdId) +
         (fd_active_words_.size() + cell_active_words_.size()) *
             sizeof(uint64_t) +
         (fd_active_degree_.size() + cell_active_degree_.size()) *
             sizeof(int) +
         index_slots_.size() * sizeof(CellId);
}

}  // namespace uguide
