#ifndef UGUIDE_VIOLATIONS_VIOLATION_DETECTOR_H_
#define UGUIDE_VIOLATIONS_VIOLATION_DETECTOR_H_

#include <unordered_set>
#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"

namespace uguide {

class ViolationEngine;

/// \brief Computes the cells an (approximate) FD flags as violations.
///
/// For the FD X -> A, tuples are grouped by their X-projection; in every
/// group holding at least two distinct A-values, each member's A-cell
/// participates in a violating tuple pair and is flagged (both sides of a
/// conflict are suspects -- the convention of FD-based error detection and
/// of the paper's workflow simulation, where a cell is erroneous iff "it
/// violates some FD in Sigma_TC").
std::vector<Cell> ViolatingCells(const Relation& relation, const Fd& fd);

/// Rows of ViolatingCells (same order, without the attribute component).
std::vector<TupleId> ViolatingTuples(const Relation& relation, const Fd& fd);

/// \brief The minimum set of tuples to delete so the FD holds exactly
/// (the g3 removal set, §2.1): within each group the most frequent A-value
/// is kept and minority tuples are returned. |result| / |T| equals the g3
/// error. Ties break toward the value seen first in the relation.
std::vector<TupleId> G3RemovalTuples(const Relation& relation, const Fd& fd);

/// The A-cells of G3RemovalTuples.
std::vector<Cell> G3RemovalCells(const Relation& relation, const Fd& fd);

/// True iff the FD has at least one violating tuple pair. Cheaper than
/// materializing the violation set.
bool HasViolations(const Relation& relation, const Fd& fd);

/// For every tuple, the number of FDs in `fds` whose g3 removal set
/// contains it. Drives Tuple-Sampling-Violation-Weighting (Alg. 7, which
/// weights by membership in "the minimal number of tuples to be deleted").
std::vector<int> ViolationCountPerTuple(const Relation& relation,
                                        const FdSet& fds);

/// \brief The set E of cells violating at least one FD of `fds` on
/// `relation`.
///
/// With `fds` = Sigma_TC this is the paper's E_T -- the FD-detectable
/// errors; the simulated expert answers cell/tuple questions from it and
/// detection metrics measure against it (§7.1).
class TrueViolationSet {
 public:
  TrueViolationSet() = default;

  /// Builds the set from the union of every FD's violating cells.
  static TrueViolationSet Compute(const Relation& relation, const FdSet& fds);

  /// As above, reusing a shared partition-backed engine (and its LHS
  /// cache) instead of re-grouping per FD.
  static TrueViolationSet Compute(ViolationEngine& engine, const FdSet& fds);

  bool Contains(const Cell& cell) const { return cells_.contains(cell); }

  /// True iff any cell of `row` is a violation. O(1): answered from a
  /// per-row bitmap built once in Compute instead of probing the cell set
  /// per attribute (this is the simulated expert's hot path for tuple
  /// questions). The attribute count is part of the historical signature;
  /// every violating cell's column is below the relation's attribute
  /// count, so it no longer participates in the lookup.
  bool TupleViolates(TupleId row, int num_attributes) const;

  size_t Size() const { return cells_.size(); }

  /// All violating cells in row-major order.
  std::vector<Cell> ToVector() const;

 private:
  std::unordered_set<Cell, CellHash> cells_;
  /// row_violates_[r] == true iff some cell of row r is in cells_.
  std::vector<bool> row_violates_;
};

}  // namespace uguide

#endif  // UGUIDE_VIOLATIONS_VIOLATION_DETECTOR_H_
